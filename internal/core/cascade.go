package core

import (
	"errors"
	"fmt"

	"linkpad/internal/adversary"
	"linkpad/internal/analytic"
	"linkpad/internal/cascade"
	"linkpad/internal/gateway"
	"linkpad/internal/netem"
	"linkpad/internal/obs"
	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// Cascade entry points: a System description plus a CascadeSpec
// instantiate the multi-hop route engine (internal/cascade) against the
// system's rate classes, jitter model and exit observation chain. Every
// hop's randomness derives from (seed, class, flow, hopID) role streams
// in the cascade stream domain (domains.go), so cascades never share
// randomness with the replica, session or population protocols, and
// flows — the unit of parallelism — never share randomness with each
// other.

// CascadePolicy selects one hop's padding stage.
type CascadePolicy int

// Supported hop policies.
const (
	// CascadeCIT is a constant-interval re-padding timer hop (default).
	CascadeCIT CascadePolicy = iota
	// CascadeVIT is a variable-interval re-padding timer hop.
	CascadeVIT
	// CascadeMix is a Chaum batch-of-K hop: no timer, no dummies.
	CascadeMix
)

// String names the policy.
func (p CascadePolicy) String() string {
	switch p {
	case CascadeCIT:
		return "CIT"
	case CascadeVIT:
		return "VIT"
	case CascadeMix:
		return "MIX"
	default:
		return "unknown"
	}
}

// CascadeHop describes one padded hop of a route. Each hop composes its
// own timer policy (or mix stage), the host jitter model shared with the
// rest of the system, and optionally its own outgoing netem link.
type CascadeHop struct {
	// Policy selects the hop's padding stage.
	Policy CascadePolicy
	// Tau is the hop's mean timer interval; 0 inherits the system Tau.
	// Ignored by mix hops.
	Tau float64
	// SigmaT is the interval standard deviation of a VIT hop (required
	// positive for VIT; must be zero otherwise).
	SigmaT float64
	// MixK is the batch size of a mix hop (0 = default 8; must be zero
	// for timer hops).
	MixK int
	// Link, when non-nil, is the hop's outgoing router link; nil means a
	// dedicated (zero cross traffic) link.
	Link *HopSpec
	// Outage, when non-nil, puts the hop on a seeded failure/recovery
	// schedule: the hop goes dark for exponential intervals and packets
	// that would depart while it is dark follow the spec's recovery
	// policy. The schedule draws from its own role stream, so attaching
	// an outage does not perturb the hop's padding realization.
	Outage *OutageSpec
}

// OutageSpec describes one hop's failure/recovery process and the entry
// gateway's reaction to it — the reaction is the measurable leak.
type OutageSpec struct {
	// MeanUp and MeanDown are the mean exponential up/down durations in
	// seconds (both positive).
	MeanUp, MeanDown float64
	// Backoff, when positive, selects the retry policy: packets hitting a
	// dark hop retry at exponentially growing offsets (Backoff, 2·Backoff,
	// 4·Backoff, ...) until an attempt lands in an up interval. Zero with
	// SpareDelay zero means packets depart at the recovery instant.
	Backoff float64
	// SpareDelay, when positive, selects failover instead: packets divert
	// to a spare route and arrive SpareDelay later. Mutually exclusive
	// with Backoff.
	SpareDelay float64
}

// Validate checks the outage parameters.
func (o *OutageSpec) Validate() error {
	if o == nil {
		return nil
	}
	if !(o.MeanUp > 0) || !(o.MeanDown > 0) {
		return errors.New("core: outage mean up/down durations must be positive")
	}
	if o.Backoff < 0 || o.SpareDelay < 0 {
		return errors.New("core: outage backoff and spare delay must be non-negative")
	}
	if o.Backoff > 0 && o.SpareDelay > 0 {
		return errors.New("core: outage backoff and spare failover are mutually exclusive")
	}
	return nil
}

// CascadeSpec describes a multi-hop route topology layered on the
// system: the per-hop padding stages and the concurrent end-to-end flows
// the adversary observes.
type CascadeSpec struct {
	// Hops are the route's padded hops in order, entry hop first. An
	// empty route is the unpadded passthrough — the no-countermeasure
	// anchor, where the exit stream is the payload stream itself.
	Hops []CascadeHop
	// Flows is the number of concurrent end-to-end flows (at least 2).
	Flows int
	// ClassMix weighs the system's rate classes across the flows
	// (len(Rates) entries, positive); nil means equal shares. Flows are
	// striped deterministically, like population users.
	ClassMix []float64
}

// maxCascadeHops bounds the route length: the hop index must fit its
// stream-ID byte with room to spare, and routes past a few hops are
// already far beyond deployed cascade lengths.
const maxCascadeHops = 32

// cascadeMixSpacing is the wire spacing of mix-hop burst packets
// (1500 B at 100 Mbit/s, matching the single-link MixSpec default).
const cascadeMixSpacing = 120e-6

// validateCascade checks the spec against the system.
func (s *System) validateCascade(spec CascadeSpec) error {
	if spec.Flows < 2 {
		return errors.New("core: cascade needs at least two flows")
	}
	if err := s.validateHops(spec.Hops); err != nil {
		return err
	}
	return s.validateClassMix(spec.ClassMix)
}

// validateHops checks a hop chain; shared by the cascade and active
// protocols, which build routes from the same CascadeHop description.
func (s *System) validateHops(hops []CascadeHop) error {
	if len(hops) > maxCascadeHops {
		return fmt.Errorf("core: cascade route has %d hops, limit %d", len(hops), maxCascadeHops)
	}
	for i, h := range hops {
		if h.Tau < 0 {
			return fmt.Errorf("core: cascade hop %d has negative Tau", i)
		}
		switch h.Policy {
		case CascadeCIT, CascadeVIT:
			if h.MixK != 0 {
				return fmt.Errorf("core: cascade hop %d sets MixK on a timer policy", i)
			}
			if h.Policy == CascadeVIT && !(h.SigmaT > 0) {
				return fmt.Errorf("core: cascade hop %d is VIT but SigmaT is not positive", i)
			}
			if h.Policy == CascadeCIT && h.SigmaT != 0 {
				return fmt.Errorf("core: cascade hop %d sets SigmaT on a CIT policy", i)
			}
		case CascadeMix:
			if h.SigmaT != 0 {
				return fmt.Errorf("core: cascade hop %d sets SigmaT on a mix", i)
			}
			if h.MixK < 0 || h.MixK == 1 {
				return fmt.Errorf("core: cascade hop %d mix batch must be at least 2", i)
			}
		default:
			return fmt.Errorf("core: cascade hop %d has unknown policy %v", i, h.Policy)
		}
		if h.Link != nil {
			l := *h.Link
			if !(l.CapacityBps > 0) || l.PacketBytes <= 0 {
				return fmt.Errorf("core: cascade hop %d has invalid link parameters", i)
			}
			if err := l.Util.Validate(); err != nil {
				return fmt.Errorf("core: cascade hop %d: %w", i, err)
			}
			if l.PropDelay < 0 {
				return fmt.Errorf("core: cascade hop %d has negative propagation delay", i)
			}
		}
		if err := h.Outage.Validate(); err != nil {
			return fmt.Errorf("core: cascade hop %d: %w", i, err)
		}
	}
	return nil
}

// hopTau resolves one hop's timer interval.
func (s *System) hopTau(h CascadeHop) float64 {
	if h.Tau > 0 {
		return h.Tau
	}
	return s.cfg.Tau
}

// buildRoute assembles one flow's route: the class payload source feeds
// the entry hop, every later hop re-pads its upstream's departure stream
// (a hop cannot tell upstream dummies from payload), and the system's
// exit observation chain — network path and tap imperfections — follows
// the last hop. withEntry attaches the adversary's entry recorder to the
// first stage's arrival tap. All randomness derives from (seed, class,
// flow, hop) role streams, so the route is a pure function of the flow
// identity.
func (s *System) buildRoute(spec CascadeSpec, class, flow int, withEntry bool) (*cascade.Route, error) {
	// One telemetry shard per route: every hop, link fault and tap
	// imperfection on this flow's path counts into it, and whichever
	// goroutine pulls the route's exit flushes it.
	sh := obs.NewShard()
	var rec *cascade.Recorder
	var entryTap func(float64)
	var err error
	if withEntry {
		rec = &cascade.Recorder{}
		entryTap, err = s.entryTapWrap(rec.Record, class,
			cascadeStreamID(flow, 0, cascadeRoleEntryTap), sh)
		if err != nil {
			return nil, err
		}
	}
	payload, err := s.payloadSource(class,
		xrand.New(s.streamSeed(class, cascadeStreamID(flow, 0, cascadeRolePayload))))
	if err != nil {
		return nil, err
	}
	stream, probes, err := s.hopChain(spec.Hops, payload, func(h int) *xrand.Rand {
		return xrand.New(s.streamSeed(class, cascadeStreamID(flow, h, cascadeRoleHop)))
	}, func(h int) *xrand.Rand {
		return xrand.New(s.streamSeed(class, cascadeStreamID(flow, h, cascadeRoleOutage)))
	}, entryTap, sh)
	if err != nil {
		return nil, err
	}
	// The system-level network path and tap imperfections form the exit
	// observation chain, exactly as for the single padded link.
	exitMaster := xrand.New(s.streamSeed(class,
		cascadeStreamID(flow, len(spec.Hops), cascadeRoleExit)))
	exit, err := s.observationChain(stream, exitMaster, sh)
	if err != nil {
		return nil, err
	}
	route, err := cascade.NewRoute(class, exit, rec, probes)
	if err != nil {
		return nil, err
	}
	route.Probe = sh
	return route, nil
}

// hopChain threads an arrival process through a sequence of re-padding
// hops: each hop composes its own timer policy (random-phased, so
// unsynchronized per-hop clocks never sit grid-locked) or batching mix,
// the system's host jitter model, and an optional outgoing link, with
// the next hop consuming the previous hop's departure stream as its
// payload. An empty hop list degenerates to the unpadded passthrough.
// hopMaster supplies hop h's RNG, so the cascade and active protocols
// can drive the same construction from their own stream domains;
// outageRng supplies hop h's failure-schedule RNG (consulted only for
// hops that carry an Outage spec, so outage-free chains draw nothing
// from it); entryTap, when non-nil, observes the first stage's payload
// arrivals. It returns the last stage's departure stream and one
// overhead probe per hop.
func (s *System) hopChain(hops []CascadeHop, payload traffic.Source, hopMaster func(h int) *xrand.Rand, outageRng func(h int) *xrand.Rand, entryTap func(float64), sh *obs.Shard) (netem.TimeStream, []cascade.HopProbe, error) {
	var stream netem.TimeStream
	var probes []cascade.HopProbe
	var err error
	if len(hops) == 0 {
		stream = &rawLink{src: payload, tap: entryTap}
	} else {
		src := payload
		for h, hop := range hops {
			master := hopMaster(h)
			var tap func(float64)
			if h == 0 {
				tap = entryTap
			}
			tau := s.hopTau(hop)
			// A timer hop emits at its own 1/τ; a mix hop forwards at its
			// input's rate. Resolve the nominal downstream rate before src
			// is rebound to this hop's output.
			outRate := 1 / tau
			if hop.Policy == CascadeMix {
				outRate = src.Rate()
			}
			switch hop.Policy {
			case CascadeMix:
				k := hop.MixK
				if k == 0 {
					k = 8
				}
				mix, err := gateway.NewMix(gateway.MixConfig{
					K:           k,
					SendSpacing: cascadeMixSpacing,
					Payload:     src,
					Jitter:      s.cfg.Jitter,
					RNG:         master.Split(),
					ArrivalTap:  tap,
					Probe:       sh,
				})
				if err != nil {
					return nil, nil, err
				}
				probes = append(probes, func() cascade.HopStats {
					return cascade.HopStats{Policy: "MIX", Emitted: mix.Packets()}
				})
				stream = mix
			default:
				var policy gateway.TimerPolicy
				if hop.Policy == CascadeVIT {
					policy, err = gateway.NewVIT(tau, hop.SigmaT, master.Split())
				} else {
					policy, err = gateway.NewCIT(tau)
				}
				if err != nil {
					return nil, nil, err
				}
				// Hops share no clock: each timer grid gets a private
				// random phase, or consecutive equal-τ hops would sit
				// phase-locked on each other's grid boundaries.
				policy, err = cascade.NewPhasedPolicy(policy, master.Split())
				if err != nil {
					return nil, nil, err
				}
				gw, err := gateway.New(gateway.Config{
					Policy:     policy,
					Jitter:     s.cfg.Jitter,
					Payload:    src,
					RNG:        master.Split(),
					ArrivalTap: tap,
					Probe:      sh,
				})
				if err != nil {
					return nil, nil, err
				}
				name := hop.Policy.String()
				probes = append(probes, func() cascade.HopStats {
					st := gw.Stats()
					return cascade.HopStats{Policy: name, Emitted: st.Fires, Dummies: st.Dummies}
				})
				stream = gw
			}
			if hop.Link != nil {
				stream, err = netem.NewFastRouter(stream, hop.Link.service(),
					netem.DiurnalUtil(hop.Link.Util, s.cfg.StartHour), hop.Link.PropDelay, master.Split())
				if err != nil {
					return nil, nil, err
				}
			}
			if hop.Outage != nil {
				sched, err := traffic.NewOnOffSchedule(hop.Outage.MeanUp, hop.Outage.MeanDown, outageRng(h))
				if err != nil {
					return nil, nil, err
				}
				os, err := netem.NewOutageStream(stream, sched, hop.Outage.Backoff, hop.Outage.SpareDelay)
				if err != nil {
					return nil, nil, err
				}
				os.SetProbe(sh)
				stream = os
			}
			if h < len(hops)-1 {
				src, err = cascade.NewStreamSource(stream, outRate)
				if err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return stream, probes, nil
}

// NewCascade instantiates the multi-hop route engine: Flows end-to-end
// flows, each crossing the spec's padded hops, with rate classes striped
// across the flows by ClassMix. Every flow's route derives from (seed,
// class, flowID) role streams in the cascade domain.
func (s *System) NewCascade(spec CascadeSpec) (*cascade.Engine, error) {
	if err := s.validateCascade(spec); err != nil {
		return nil, err
	}
	cum := s.classCum(spec.ClassMix)
	build := func(flow int) (*cascade.Route, error) {
		return s.buildRoute(spec, classOf(flow, spec.Flows, cum), flow, true)
	}
	return cascade.NewEngine(spec.Flows, len(spec.Hops), build)
}

// CascadeCorrConfig parameterizes the end-to-end cascade correlation
// attack run through a System: the attack-side knobs mirror
// cascade.Config, plus the off-line training effort for the exit-side
// PIAT class classifiers.
type CascadeCorrConfig struct {
	// Duration is the per-flow observation time in stream seconds
	// (0 = 60).
	Duration float64
	// RateWindow is the throughput-fingerprint bin width (0 = 1 s).
	RateWindow float64
	// CorrWeight scales rate correlation against the class posterior
	// (0 = default).
	CorrWeight float64
	// Features are the PIAT statistics the exit classifiers use; empty
	// runs a pure rate-correlation attack. Ignored for zero-hop routes
	// (an unpadded route needs no class fingerprint).
	Features []analytic.Feature
	// FeatureWindow is the PIAT count per feature value (0 = 200).
	FeatureWindow int
	// TrainWindows is the number of off-line training windows per class
	// for the classifiers (0 = 120).
	TrainWindows int
	// Workers bounds the per-flow/per-window parallelism; results are
	// identical at any width. Zero means all CPUs.
	Workers int
}

// withDefaults fills zero fields.
func (c CascadeCorrConfig) withDefaults() CascadeCorrConfig {
	if c.Duration == 0 {
		c.Duration = 60
	}
	if c.FeatureWindow == 0 {
		c.FeatureWindow = 200
	}
	if c.TrainWindows == 0 {
		c.TrainWindows = 120
	}
	return c
}

// cascadeCorrelation runs the end-to-end correlation attack against a
// fresh cascade: the adversary first trains per-class PIAT classifiers
// on phantom flows (fresh realizations of the same route construction,
// so training observes the full multi-hop re-padding exactly as run time
// does), then observes every flow's entry and exit for cfg.Duration and
// matches exit flows to entry flows by throughput-fingerprint
// correlation plus exit class posteriors. Results are identical at any
// cfg.Workers width; flows are the unit of parallelism.
func (s *System) cascadeCorrelation(spec CascadeSpec, cfg CascadeCorrConfig) (*cascade.Result, error) {
	if err := s.validateCascade(spec); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if len(spec.Hops) == 0 {
		cfg.Features = nil
	}
	if cfg.TrainWindows < 2 {
		return nil, errors.New("core: cascade correlation needs at least two training windows per class")
	}

	// Off-line phase: per-class exit feature densities from phantom
	// flows, which reuse the population protocol's phantom index block —
	// a disjoint flow range of the cascade domain real flows never reach.
	classifiers, exts, err := s.trainExitClassifiers(cfg.Features,
		cfg.TrainWindows, cfg.FeatureWindow, cfg.Workers,
		func(class, w int) (adversary.PIATSource, error) {
			route, err := s.buildRoute(spec, class,
				phantomFlowIndex(class, cfg.TrainWindows, w), false)
			if err != nil {
				return nil, err
			}
			d := netem.NewDiffer(route.Exit)
			d.SetProbe(route.Probe)
			return d, nil
		})
	if err != nil {
		return nil, err
	}

	eng, err := s.NewCascade(spec)
	if err != nil {
		return nil, err
	}
	return cascade.Correlate(eng, cascade.Config{
		Duration:      cfg.Duration,
		RateWindow:    cfg.RateWindow,
		CorrWeight:    cfg.CorrWeight,
		FeatureWindow: cfg.FeatureWindow,
		Classifiers:   classifiers,
		Extractors:    exts,
		Workers:       cfg.Workers,
	})
}
