package core

import (
	"reflect"
	"runtime"
	"testing"

	"linkpad/internal/analytic"
	"linkpad/internal/population"
	"linkpad/internal/traffic"
)

// Population results must be byte-identical at any worker width,
// mirroring TestRunAttackWorkerInvariance: users are the unit of
// parallelism and every user's streams derive from (seed, class,
// userID) alone.
func TestRunDisclosureWorkerInvariance(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := PopulationSpec{Users: 24, Recipients: 40, CoverRate: 0.5}
	run := func(workers int) *population.DisclosureResult {
		res, err := sys.RunDisclosure(spec, population.DisclosureConfig{
			MaxRounds: 800,
			Workers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0), 0} {
		got := run(w)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: disclosure result differs\n got %+v\nwant %+v", w, got, ref)
		}
	}
}

func TestRunFlowCorrelationWorkerInvariance(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := PopulationSpec{Users: 8, Recipients: 40}
	cfg := FlowCorrConfig{
		Duration:      20,
		FeatureWindow: 100,
		TrainWindows:  12,
		Features:      []analytic.Feature{analytic.FeatureVariance},
	}
	run := func(workers int) *population.FlowCorrResult {
		c := cfg
		c.Workers = workers
		res, err := sys.RunFlowCorrelation(spec, c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0), 0} {
		got := run(w)
		if *got != *ref {
			t.Fatalf("workers=%d: flow result %+v differs from reference %+v", w, got, ref)
		}
	}
}

// The paper's central claim carries to the population: CIT padding
// erases the throughput fingerprint (matching collapses toward the
// class anonymity set) while the unpadded link loses every flow.
func TestFlowCorrelationPaddingProtects(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := PopulationSpec{Users: 12, Recipients: 40}
	raw, err := sys.RunFlowCorrelation(spec, FlowCorrConfig{Duration: 30, Raw: true})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Accuracy != 1 || raw.MeanCorrTrue < 0.99 {
		t.Errorf("unpadded flows should be fully correlated: %+v", raw)
	}
	cit, err := sys.RunFlowCorrelation(spec, FlowCorrConfig{
		Duration:      30,
		FeatureWindow: 100,
		TrainWindows:  20,
		Features:      []analytic.Feature{analytic.FeatureVariance},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cit.Accuracy > 0.5 {
		t.Errorf("CIT padding should break per-flow matching, accuracy %v", cit.Accuracy)
	}
	if cit.MeanCorrTrue > 0.2 {
		t.Errorf("CIT padding should erase the throughput fingerprint, correlation %v", cit.MeanCorrTrue)
	}
	if cit.ClassAccuracy < 0.7 {
		t.Errorf("the variance leak should still identify the class under CIT, class accuracy %v", cit.ClassAccuracy)
	}
}

func TestPopulationSpecValidation(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := []PopulationSpec{
		{Users: 1, Recipients: 40},
		{Users: 8, Recipients: 2},
		{Users: 8, Recipients: 40, Contacts: 30},
		{Users: 8, Recipients: 40, ContactWeight: 1.5},
		{Users: 8, Recipients: 40, CoverRate: -1},
		{Users: 8, Recipients: 40, CoverRate: 1, CoverToPPS: 100},
		{Users: 8, Recipients: 40, ClassMix: []float64{1}},
		{Users: 8, Recipients: 40, ClassMix: []float64{1, 0}},
	}
	for i, spec := range bad {
		if _, err := sys.NewPopulation(spec); err == nil {
			t.Errorf("spec %d (%+v) should fail validation", i, spec)
		}
	}
	if _, err := sys.NewPopulation(PopulationSpec{Users: 8, Recipients: 40}); err != nil {
		t.Errorf("default spec should validate: %v", err)
	}
}

// Class striping must honor the mix weights deterministically.
func TestPopulationClassMix(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := PopulationSpec{Users: 40, Recipients: 40, ClassMix: []float64{3, 1}}.withDefaults()
	cum := sys.classCum(spec.ClassMix)
	counts := [2]int{}
	for u := 0; u < spec.Users; u++ {
		counts[classOf(u, spec.Users, cum)]++
	}
	if counts[0] != 30 || counts[1] != 10 {
		t.Errorf("class mix 3:1 over 40 users gave %v, want [30 10]", counts)
	}
	eng, err := sys.NewPopulation(spec)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < spec.Users; u++ {
		if eng.Class(u) != classOf(u, spec.Users, cum) {
			t.Fatalf("engine class of user %d disagrees with striping", u)
		}
	}
}

// A configured network path and tap imperfections must flow into the
// population links (the same observation chain every protocol shares),
// not be silently ignored.
func TestFlowCorrelationHonorsNetworkPath(t *testing.T) {
	cfg := DefaultLabConfig()
	cfg.Hops = []HopSpec{{
		CapacityBps: 100e6,
		PacketBytes: 200,
		Util:        traffic.Constant(0.2),
	}}
	cfg.TapLossProb = 0.05
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := PopulationSpec{Users: 6, Recipients: 40}
	netRes, err := sys.RunFlowCorrelation(spec, FlowCorrConfig{Duration: 20})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	cleanRes, err := clean.RunFlowCorrelation(spec, FlowCorrConfig{Duration: 20})
	if err != nil {
		t.Fatal(err)
	}
	if *netRes == *cleanRes {
		t.Error("network path and tap loss left the flow observations unchanged")
	}
}
