package core

import (
	"math"
	"testing"

	"linkpad/internal/analytic"
	"linkpad/internal/gateway"
	"linkpad/internal/traffic"
)

func labSystem(t testing.TB, mutate func(*Config)) *System {
	t.Helper()
	cfg := DefaultLabConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Tau = 0 },
		func(c *Config) { c.SigmaT = -1 },
		func(c *Config) { c.Rates = c.Rates[:1] },
		func(c *Config) { c.Rates[0].PPS = 0 },
		func(c *Config) { c.Rates[0].Label = "" },
		func(c *Config) { c.Rates[1].Label = c.Rates[0].Label },
		func(c *Config) { c.Jitter.SigmaOS = -1 },
		func(c *Config) { c.Hops = []HopSpec{{CapacityBps: 0, PacketBytes: 1500}} },
		func(c *Config) {
			c.Hops = []HopSpec{{CapacityBps: 100e6, PacketBytes: 1500,
				Util: traffic.Diurnal{Trough: 0.5, Peak: 0.2}}}
		},
		func(c *Config) {
			c.Hops = []HopSpec{{CapacityBps: 100e6, PacketBytes: 1500, PropDelay: -1}}
		},
		func(c *Config) { c.TapLossProb = 1 },
		func(c *Config) { c.TapResolution = -1 },
		func(c *Config) { c.StartHour = 24 },
	}
	for i, mutate := range bad {
		cfg := DefaultLabConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultLabConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestPIATSourceDeterministicReplicas(t *testing.T) {
	s := labSystem(t, nil)
	a, err := s.PIATSource(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.PIATSource(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.PIATSource(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	differ := false
	for i := 0; i < 1000; i++ {
		xa, xb, xc := a.Next(), b.Next(), c.Next()
		if xa != xb {
			t.Fatalf("same stream ID diverged at %d", i)
		}
		if xa != xc {
			differ = true
		}
	}
	if !differ {
		t.Error("different stream IDs produced identical streams")
	}
}

func TestPIATSourceClassesDiffer(t *testing.T) {
	s := labSystem(t, nil)
	a, err := s.PIATSource(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.PIATSource(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			same = false
			break
		}
	}
	if same {
		t.Error("different classes produced identical streams")
	}
	if _, err := s.PIATSource(5, 1); err == nil {
		t.Error("out-of-range class accepted")
	}
}

// The headline result (paper Fig. 4b): against CIT padding observed at the
// gateway, the entropy and variance features reach ~100% detection at
// n = 1000 while the mean feature stays near guessing.
func TestCITLabAttackHeadline(t *testing.T) {
	s := labSystem(t, nil)
	for _, tc := range []struct {
		feature  analytic.Feature
		min, max float64
	}{
		{analytic.FeatureEntropy, 0.93, 1.01},
		{analytic.FeatureVariance, 0.90, 1.01},
		{analytic.FeatureMean, 0.40, 0.72},
	} {
		res, err := s.RunAttack(AttackConfig{
			Feature:      tc.feature,
			WindowSize:   1000,
			TrainWindows: 150,
			EvalWindows:  150,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.DetectionRate < tc.min || res.DetectionRate > tc.max {
			t.Errorf("%v: detection = %v, want in [%v, %v]",
				tc.feature, res.DetectionRate, tc.min, tc.max)
		}
		if res.EmpiricalR < 1.5 || res.EmpiricalR > 2.4 {
			t.Errorf("%v: empirical r = %v, want ~1.9", tc.feature, res.EmpiricalR)
		}
	}
}

// Empirical detection should track the closed-form prediction for the
// variance and entropy features (paper Fig. 4b's "curves coincide well").
func TestEmpiricalMatchesTheory(t *testing.T) {
	s := labSystem(t, nil)
	for _, f := range []analytic.Feature{analytic.FeatureVariance, analytic.FeatureEntropy} {
		for _, n := range []int{200, 1000} {
			res, err := s.RunAttack(AttackConfig{
				Feature:      f,
				WindowSize:   n,
				TrainWindows: 150,
				EvalWindows:  150,
			})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.DetectionRate-res.TheoryDetectionRate) > 0.12 {
				t.Errorf("%v n=%d: empirical %v vs theory %v",
					f, n, res.DetectionRate, res.TheoryDetectionRate)
			}
		}
	}
}

// VIT with a large σ_T defeats the attack (paper Fig. 5a).
func TestVITDefeatsAttack(t *testing.T) {
	s := labSystem(t, func(c *Config) { c.SigmaT = 50e-6 })
	for _, f := range []analytic.Feature{analytic.FeatureVariance, analytic.FeatureEntropy} {
		res, err := s.RunAttack(AttackConfig{
			Feature:      f,
			WindowSize:   1000,
			TrainWindows: 150,
			EvalWindows:  150,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.DetectionRate > 0.62 {
			t.Errorf("%v under VIT: detection = %v, want ~0.5", f, res.DetectionRate)
		}
	}
}

// Cross traffic lowers CIT detection (paper Fig. 6 direction).
func TestCrossTrafficLowersDetection(t *testing.T) {
	clean := labSystem(t, nil)
	congested := labSystem(t, func(c *Config) {
		c.Hops = []HopSpec{{
			CapacityBps: 100e6, PacketBytes: 1500,
			Util: traffic.Constant(0.45),
		}}
	})
	attack := AttackConfig{
		Feature:      analytic.FeatureVariance,
		WindowSize:   1000,
		TrainWindows: 120,
		EvalWindows:  120,
	}
	a, err := clean.RunAttack(attack)
	if err != nil {
		t.Fatal(err)
	}
	b, err := congested.RunAttack(attack)
	if err != nil {
		t.Fatal(err)
	}
	if b.DetectionRate >= a.DetectionRate-0.05 {
		t.Errorf("congestion did not lower variance detection: clean %v vs congested %v",
			a.DetectionRate, b.DetectionRate)
	}
}

func TestRunAttackStreamSeparation(t *testing.T) {
	s := labSystem(t, nil)
	if _, err := s.RunAttack(AttackConfig{TrainStreamID: 5, EvalStreamID: 5}); err == nil {
		t.Error("identical train/eval stream IDs must be rejected")
	}
}

func TestModelRMatchesGatewayPrediction(t *testing.T) {
	s := labSystem(t, nil)
	r, err := s.ModelR(0)
	if err != nil {
		t.Fatal(err)
	}
	cit, err := gateway.NewCIT(10e-3)
	if err != nil {
		t.Fatal(err)
	}
	want := gateway.VarianceRatio(cit, gateway.DefaultJitter(), 10, 40)
	if math.Abs(r-want) > 1e-12 {
		t.Errorf("ModelR = %v, want %v", r, want)
	}
	// Adding a congested hop pulls r toward 1.
	s2 := labSystem(t, func(c *Config) {
		c.Hops = []HopSpec{{CapacityBps: 100e6, PacketBytes: 1500, Util: traffic.Constant(0.4)}}
	})
	r2, err := s2.ModelR(0)
	if err != nil {
		t.Fatal(err)
	}
	if r2 >= r || r2 < 1 {
		t.Errorf("hop should shrink r: %v -> %v", r, r2)
	}
}

func TestTheoreticalDetectionRate(t *testing.T) {
	s := labSystem(t, nil)
	v, err := s.TheoreticalDetectionRate(analytic.FeatureEntropy, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.97 {
		t.Errorf("theory at gateway = %v, want ~0.99", v)
	}
}

func TestPaddingOverhead(t *testing.T) {
	s := labSystem(t, nil)
	o0, err := s.PaddingOverhead(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o0-0.9) > 1e-12 {
		t.Errorf("overhead(10pps) = %v, want 0.9", o0)
	}
	o1, err := s.PaddingOverhead(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o1-0.6) > 1e-12 {
		t.Errorf("overhead(40pps) = %v, want 0.6", o1)
	}
	if _, err := s.PaddingOverhead(9); err == nil {
		t.Error("out-of-range class accepted")
	}
}

// The analytic design guideline gives a positive σ_T when CIT is
// detectable; the closed-form value is a lower bound on what the
// mechanistic gateway needs (the blocking mixture leaks shape information
// beyond the Gaussian theorems).
func TestDesignVITAnalytic(t *testing.T) {
	s := labSystem(t, nil)
	sigmaT, err := s.DesignVIT(analytic.FeatureEntropy, 0.6, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if sigmaT <= 0 {
		t.Fatalf("CIT is detectable at n=1000; expected positive σ_T, got %v", sigmaT)
	}
	// The analytic value lands in the µs decade for the calibrated
	// gateway (r_CIT ≈ 1.9 → required r ≈ 1.1).
	if sigmaT < 1e-6 || sigmaT > 100e-6 {
		t.Errorf("analytic σ_T = %v, expected µs scale", sigmaT)
	}
}

// Empirical design round trip: calibrate σ_T against the simulated
// attacker, build the system with it, and verify an independent attack is
// capped near the target.
func TestCalibrateVITRoundTrip(t *testing.T) {
	s := labSystem(t, nil)
	attack := AttackConfig{
		Feature:      analytic.FeatureEntropy,
		WindowSize:   500,
		TrainWindows: 100,
		EvalWindows:  100,
	}
	sigmaT, err := s.CalibrateVIT(0.6, attack)
	if err != nil {
		t.Fatal(err)
	}
	if sigmaT <= 0 {
		t.Fatal("expected positive calibrated σ_T")
	}
	hard := labSystem(t, func(c *Config) {
		c.SigmaT = sigmaT
		c.Seed = 77 // independent system realization
	})
	res, err := hard.RunAttack(attack)
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectionRate > 0.6+0.08 {
		t.Errorf("calibrated σ_T=%v still allows detection %v > target 0.6", sigmaT, res.DetectionRate)
	}
}

func TestCalibrateVITErrors(t *testing.T) {
	s := labSystem(t, nil)
	if _, err := s.CalibrateVIT(0.5, AttackConfig{}); err == nil {
		t.Error("target 0.5 should fail")
	}
	if _, err := s.CalibrateVIT(1.0, AttackConfig{}); err == nil {
		t.Error("target 1.0 should fail")
	}
}

// Adaptive masking (Timmerman baseline) leaks the rate at first order:
// even the sample-mean feature — useless against CIT/VIT — detects it
// almost surely.
func TestAdaptiveBaselineLeaksToMeanFeature(t *testing.T) {
	s := labSystem(t, func(c *Config) {
		c.Adaptive = &AdaptiveSpec{IdleFactor: 4, IdleAfter: 3}
	})
	res, err := s.RunAttack(AttackConfig{
		Feature:      analytic.FeatureMean,
		WindowSize:   200,
		TrainWindows: 80,
		EvalWindows:  80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectionRate < 0.95 {
		t.Errorf("mean-feature detection vs adaptive masking = %v, want ~1.0", res.DetectionRate)
	}
	if _, err := s.ModelR(0); err == nil {
		t.Error("ModelR should refuse adaptive systems")
	}
}

// The Chaum mix baseline leaks the rate at first order too: mean-feature
// detection is near-perfect, and ModelR/Gateway refuse mix systems.
func TestMixBaseline(t *testing.T) {
	s := labSystem(t, func(c *Config) {
		c.Mix = &MixSpec{K: 8}
	})
	res, err := s.RunAttack(AttackConfig{
		Feature:      analytic.FeatureMean,
		WindowSize:   100,
		TrainWindows: 80,
		EvalWindows:  80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectionRate < 0.95 {
		t.Errorf("mean-feature detection vs mix = %v, want ~1.0", res.DetectionRate)
	}
	if _, err := s.ModelR(0); err == nil {
		t.Error("ModelR should refuse mix systems")
	}
	if _, err := s.Gateway(0, 1); err == nil {
		t.Error("Gateway should refuse mix systems")
	}
	mix, err := s.MixGateway(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		mix.Next()
	}
	if mix.MeanDelay() <= 0 || mix.MaxDelay() < mix.MeanDelay() {
		t.Errorf("mix delays: mean %v max %v", mix.MeanDelay(), mix.MaxDelay())
	}
	o, err := s.PaddingOverhead(0)
	if err != nil || o != 0 {
		t.Errorf("mix overhead = %v err %v, want 0", o, err)
	}
	// Non-mix systems refuse MixGateway.
	plain := labSystem(t, nil)
	if _, err := plain.MixGateway(0, 1); err == nil {
		t.Error("MixGateway should refuse non-mix systems")
	}
}

func TestMixConfigValidation(t *testing.T) {
	for i, mutate := range []func(*Config){
		func(c *Config) { c.Mix = &MixSpec{K: 1} },
		func(c *Config) { c.Mix = &MixSpec{K: 8, SendSpacing: -1} },
		func(c *Config) { c.Mix = &MixSpec{K: 8}; c.SigmaT = 1e-6 },
		func(c *Config) {
			c.Mix = &MixSpec{K: 8}
			c.Adaptive = &AdaptiveSpec{IdleFactor: 4, IdleAfter: 3}
		},
	} {
		cfg := DefaultLabConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid mix config accepted", i)
		}
	}
}

func TestAdaptiveConfigValidation(t *testing.T) {
	bad := []AdaptiveSpec{
		{IdleFactor: 1, IdleAfter: 3},
		{IdleFactor: 0.5, IdleAfter: 3},
		{IdleFactor: 4, IdleAfter: 0},
	}
	for i, spec := range bad {
		cfg := DefaultLabConfig()
		spec := spec
		cfg.Adaptive = &spec
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid adaptive spec accepted", i)
		}
	}
	cfg := DefaultLabConfig()
	cfg.SigmaT = 1e-6
	cfg.Adaptive = &AdaptiveSpec{IdleFactor: 4, IdleAfter: 3}
	if err := cfg.Validate(); err == nil {
		t.Error("SigmaT + Adaptive accepted")
	}
}

func TestPayloadModels(t *testing.T) {
	for _, m := range []PayloadModel{PayloadPoisson, PayloadCBR, PayloadOnOff} {
		s := labSystem(t, func(c *Config) { c.Payload = m })
		src, err := s.PIATSource(0, 1)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for i := 0; i < 1000; i++ {
			if x := src.Next(); x < 0 {
				t.Fatalf("%v: negative PIAT", m)
			}
		}
	}
	if PayloadPoisson.String() != "poisson" || PayloadCBR.String() != "cbr" ||
		PayloadOnOff.String() != "onoff" || PayloadModel(9).String() != "unknown" {
		t.Error("payload model names broken")
	}
	s := labSystem(t, nil)
	s.cfg.Payload = PayloadModel(9)
	if _, err := s.PIATSource(0, 1); err == nil {
		t.Error("unknown payload model accepted")
	}
}

func TestTapImperfections(t *testing.T) {
	s := labSystem(t, func(c *Config) {
		c.TapLossProb = 0.05
		c.TapResolution = 1e-6
	})
	src, err := s.PIATSource(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		x := src.Next()
		if x < 0 {
			t.Fatal("negative PIAT from quantized lossy tap")
		}
		sum += x
	}
	// 5% loss stretches the mean PIAT by ~1/0.95.
	mean := sum / n
	if math.Abs(mean-10e-3/0.95) > 0.1e-3 {
		t.Errorf("lossy mean PIAT = %v, want ~%v", mean, 10e-3/0.95)
	}
}

func TestLabelsAndConfigAccessors(t *testing.T) {
	s := labSystem(t, nil)
	ls := s.Labels()
	if len(ls) != 2 || ls[0] != "10pps" || ls[1] != "40pps" {
		t.Errorf("labels = %v", ls)
	}
	if s.Config().Tau != 10e-3 {
		t.Error("config accessor broken")
	}
}

func BenchmarkPIATSourceLab(b *testing.B) {
	s, err := NewSystem(DefaultLabConfig())
	if err != nil {
		b.Fatal(err)
	}
	src, err := s.PIATSource(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += src.Next()
	}
	_ = sink
}

func BenchmarkPIATSourceWAN(b *testing.B) {
	cfg := DefaultLabConfig()
	for i := 0; i < 15; i++ {
		cfg.Hops = append(cfg.Hops, HopSpec{
			CapacityBps: 100e6, PacketBytes: 1500,
			Util: traffic.Diurnal{Trough: 0.05, Peak: 0.35, TroughHour: 3},
		})
	}
	s, err := NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	src, err := s.PIATSource(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += src.Next()
	}
	_ = sink
}
