package core

import (
	"context"

	"linkpad/internal/active"
	"linkpad/internal/analytic"
	"linkpad/internal/cascade"
	"linkpad/internal/population"
)

// deprecated.go: the pre-Scenario per-protocol entry points, kept as
// thin wrappers so existing callers keep compiling and producing
// byte-identical results. Each wrapper builds the equivalent Spec and
// runs it with zero RunOptions — exactly the old behavior. New code
// should use Build + Scenario.Run directly.

// run builds and executes spec with default options, for the wrappers.
func (s *System) run(spec Spec) (*Result, error) {
	sc, err := s.Build(spec)
	if err != nil {
		return nil, err
	}
	return sc.Run(context.Background(), RunOptions{})
}

// RunAttack trains the adversary on fresh replicas of the system and
// measures its detection rate on further replicas.
//
// Deprecated: use Build(AttackSetSpec{...}) and Scenario.Run; this
// wrapper remains for compatibility.
func (s *System) RunAttack(cfg AttackConfig) (*AttackResult, error) {
	res, err := s.RunAttackSet(cfg, []analytic.Feature{cfg.Feature})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// RunAttackSet runs the replica-window attack for several feature
// statistics against the same Monte Carlo windows in one pass.
//
// Deprecated: use Build(AttackSetSpec{...}) and Scenario.Run; this
// wrapper remains for compatibility.
func (s *System) RunAttackSet(cfg AttackConfig, features []analytic.Feature) ([]*AttackResult, error) {
	res, err := s.run(AttackSetSpec{Attack: cfg, Features: features})
	if err != nil {
		return nil, err
	}
	return res.AttackSet, nil
}

// RunAttackSession runs the continuous-stream attack end to end.
//
// Deprecated: use Build(SessionAttackSpec{...}) and Scenario.Run; this
// wrapper remains for compatibility.
func (s *System) RunAttackSession(cfg SessionAttackConfig) (*SessionAttackResult, error) {
	res, err := s.run(SessionAttackSpec{Session: cfg})
	if err != nil {
		return nil, err
	}
	return res.Session, nil
}

// RunDisclosure runs the round-based statistical disclosure attack
// against a fresh population.
//
// Deprecated: use Build(DisclosureSpec{...}) and Scenario.Run; this
// wrapper remains for compatibility.
func (s *System) RunDisclosure(spec PopulationSpec, cfg population.DisclosureConfig) (*population.DisclosureResult, error) {
	res, err := s.run(DisclosureSpec{Population: spec, Disclosure: cfg})
	if err != nil {
		return nil, err
	}
	return res.Disclosure, nil
}

// RunFlowCorrelation runs the per-flow population correlation attack
// end to end.
//
// Deprecated: use Build(FlowCorrelationSpec{...}) and Scenario.Run;
// this wrapper remains for compatibility.
func (s *System) RunFlowCorrelation(spec PopulationSpec, cfg FlowCorrConfig) (*population.FlowCorrResult, error) {
	res, err := s.run(FlowCorrelationSpec{Population: spec, Corr: cfg})
	if err != nil {
		return nil, err
	}
	return res.FlowCorr, nil
}

// RunCascadeCorrelation runs the end-to-end correlation attack against
// a fresh cascade.
//
// Deprecated: use Build(CascadeCorrelationSpec{...}) and Scenario.Run;
// this wrapper remains for compatibility.
func (s *System) RunCascadeCorrelation(spec CascadeSpec, cfg CascadeCorrConfig) (*cascade.Result, error) {
	res, err := s.run(CascadeCorrelationSpec{Cascade: spec, Corr: cfg})
	if err != nil {
		return nil, err
	}
	return res.Cascade, nil
}

// RunActiveDetection runs the active watermark attack end to end.
//
// Deprecated: use Build(ActiveDetectionSpec{...}) and Scenario.Run;
// this wrapper remains for compatibility.
func (s *System) RunActiveDetection(spec ActiveSpec, cfg ActiveDetectConfig) (*active.Result, error) {
	res, err := s.run(ActiveDetectionSpec{Active: spec, Detect: cfg})
	if err != nil {
		return nil, err
	}
	return res.Active, nil
}
