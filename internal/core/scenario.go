package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"linkpad/internal/active"
	"linkpad/internal/analytic"
	"linkpad/internal/cascade"
	"linkpad/internal/obs"
	"linkpad/internal/population"
)

// Scenario API (scenario.go): the unified entry point to all five
// observation protocols. Historically each protocol grew its own Run*
// signature (RunAttackSet, RunAttackSession, RunDisclosure +
// RunFlowCorrelation, RunCascadeCorrelation, RunActiveDetection) with
// divergent knob plumbing; the Scenario interface replaces the five
// shapes with one:
//
//	sc, err := sys.Build(core.DisclosureSpec{Population: pop, Disclosure: cfg})
//	res, err := sc.Run(ctx, core.RunOptions{Workers: 4})
//	... res.Disclosure ...
//
// Build validates the spec's shape against the system eagerly (a bad
// spec fails before any simulation); Run executes the attack under the
// shared RunOptions — worker width, master seed, observation-budget
// scale, telemetry probe, and (for resumable protocols) a checkpoint to
// continue from. The old Run* methods survive as thin deprecated
// wrappers over this path (deprecated.go).
//
// Determinism: a scenario run is a pure function of (system config,
// spec, Seed, Scale) — Workers and Probe never change a result, and a
// Resume'd run finishes byte-identically to an uninterrupted one.

// Spec describes one scenario: which protocol to run and with what
// parameters. The interface is sealed — the six spec types below are
// the complete set; Build rejects anything else.
type Spec interface{ scenarioSpec() }

// AttackSetSpec is the replica-window attack (the paper's off-line
// training / run-time classification protocol) measured for one or more
// feature statistics against the same Monte Carlo windows.
type AttackSetSpec struct {
	// Attack carries the window, training and stream-domain knobs.
	Attack AttackConfig
	// Features are the statistics to classify on (at least one). The
	// padded-stream simulation is shared across all of them.
	Features []analytic.Feature
}

// SessionAttackSpec is the continuous-stream attack: consecutive windows
// of long-lived sessions accumulated into an anytime decision.
type SessionAttackSpec struct {
	// Session carries the full session-attack configuration.
	Session SessionAttackConfig
}

// DisclosureSpec is the round-based statistical disclosure attack
// against a user population behind a batching mix (threshold, pool or
// timed — Disclosure.Mix), with a pluggable estimator
// (Disclosure.Estimator) against the population's dummy policy
// (Population.Dummies).
type DisclosureSpec struct {
	// Population describes the sender population, including its dummy
	// policy.
	Population PopulationSpec
	// Disclosure carries the attack knobs (batch, mix, estimator,
	// targets, budget).
	Disclosure population.DisclosureConfig
}

// FlowCorrelationSpec is the per-flow correlation attack against a user
// population: throughput fingerprints plus PIAT class posteriors.
type FlowCorrelationSpec struct {
	// Population describes the sender population.
	Population PopulationSpec
	// Corr carries the attack knobs (duration, rate windows, features).
	Corr FlowCorrConfig
}

// CascadeCorrelationSpec is the end-to-end correlation attack against a
// cascade of re-padding hops.
type CascadeCorrelationSpec struct {
	// Cascade describes the flows and the hop chain.
	Cascade CascadeSpec
	// Corr carries the attack knobs.
	Corr CascadeCorrConfig
}

// ActiveDetectionSpec is the active watermark attack: inject a timing
// watermark at the ingress, matched-filter at the egress.
type ActiveDetectionSpec struct {
	// Active describes the watermarked flows and their protocol.
	Active ActiveSpec
	// Detect carries the detection knobs.
	Detect ActiveDetectConfig
}

func (AttackSetSpec) scenarioSpec()          {}
func (SessionAttackSpec) scenarioSpec()      {}
func (DisclosureSpec) scenarioSpec()         {}
func (FlowCorrelationSpec) scenarioSpec()    {}
func (CascadeCorrelationSpec) scenarioSpec() {}
func (ActiveDetectionSpec) scenarioSpec()    {}

// RunOptions are the execution knobs shared by every scenario. The zero
// value runs the spec exactly as written: config workers, the system's
// own seed, full observation budget.
type RunOptions struct {
	// Workers, when positive, overrides the spec's worker width. Results
	// are identical at any width.
	Workers int
	// Seed, when non-zero, runs the scenario against a system rebuilt
	// with this master seed (same Config otherwise) — the per-cell
	// reseeding hook sweep runners use.
	Seed uint64
	// Scale, when positive and not 1, multiplies the scenario's primary
	// observation budget after defaults are applied — training/eval
	// windows for the replica and session attacks, the round budget for
	// disclosure, the observation duration for the flow protocols — with
	// floors that keep the run valid. Zero means 1 (full budget).
	Scale float64
	// Probe, when non-nil, receives the scenario's engine-level telemetry
	// counters instead of the process-global registry. Currently the
	// population round engine is the probe-aware layer (the other
	// protocols publish through the global registry regardless).
	// Counters never influence results.
	Probe *obs.Shard
	// Resume continues a checkpointed run instead of starting fresh.
	// Supported by disclosure scenarios (the resumable protocol); any
	// other spec rejects a non-nil Resume.
	Resume *population.DisclosureState
}

// Result is the outcome union of one scenario run: exactly one field is
// non-nil, matching the spec type the scenario was built from.
type Result struct {
	// AttackSet holds the replica-window results, in Features order
	// (AttackSetSpec).
	AttackSet []*AttackResult
	// Session holds the continuous-stream result (SessionAttackSpec).
	Session *SessionAttackResult
	// Disclosure holds the statistical-disclosure result (DisclosureSpec).
	Disclosure *population.DisclosureResult
	// FlowCorr holds the population flow-correlation result
	// (FlowCorrelationSpec).
	FlowCorr *population.FlowCorrResult
	// Cascade holds the cascade-correlation result
	// (CascadeCorrelationSpec).
	Cascade *cascade.Result
	// Active holds the watermark-detection result (ActiveDetectionSpec).
	Active *active.Result
}

// Scenario is a validated, system-bound attack ready to run. A scenario
// is reusable: each Run call executes a fresh simulation (determinism
// makes two identical Runs produce identical results).
type Scenario interface {
	// Run executes the scenario. The context is consulted at phase
	// boundaries — between training and evaluation, and (for the round-
	// based disclosure protocol) between estimator checkpoints — so
	// cancellation interrupts long runs without tearing mid-phase state.
	Run(ctx context.Context, opts RunOptions) (*Result, error)
}

// Build validates spec against the system and returns the runnable
// scenario. Shape errors (bad population geometry, empty feature sets,
// aliasing stream domains) surface here, before any simulation cost.
func (s *System) Build(spec Spec) (Scenario, error) {
	if spec == nil {
		return nil, errors.New("core: nil scenario spec")
	}
	switch sp := spec.(type) {
	case AttackSetSpec:
		if len(sp.Features) == 0 {
			return nil, errors.New("core: attack-set scenario needs at least one feature")
		}
		cfg := sp.Attack.withDefaults()
		if uint32(cfg.TrainStreamID) == uint32(cfg.EvalStreamID) {
			return nil, errors.New("core: training and evaluation stream IDs must differ in their low 32 bits")
		}
	case SessionAttackSpec:
		if err := sp.Session.withDefaults().validateEvalPhase(); err != nil {
			return nil, err
		}
	case DisclosureSpec:
		if err := s.validatePopulation(sp.Population.withDefaults()); err != nil {
			return nil, err
		}
		if err := sp.Disclosure.Validate(sp.Population.Users); err != nil {
			return nil, err
		}
		// The dummy policy lives on the population (the senders act it
		// out); a conflicting copy on the attack config is a spec bug.
		if sp.Disclosure.Dummies != population.DummyNone && sp.Disclosure.Dummies != sp.Population.Dummies {
			return nil, errors.New("core: set the dummy policy on PopulationSpec.Dummies; the DisclosureConfig copy disagrees")
		}
	case FlowCorrelationSpec:
		if err := s.validatePopulation(sp.Population.withDefaults()); err != nil {
			return nil, err
		}
	case CascadeCorrelationSpec:
		if err := s.validateCascade(sp.Cascade); err != nil {
			return nil, err
		}
	case ActiveDetectionSpec:
		if err := s.validateActive(sp.Active.withDefaults()); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown scenario spec type %T", spec)
	}
	return &scenario{sys: s, spec: spec}, nil
}

// scenario binds a validated spec to its system.
type scenario struct {
	sys  *System
	spec Spec
}

// scaleCount scales an integer observation budget, flooring so the run
// stays statistically valid.
func scaleCount(n int, scale float64, floor int) int {
	if scale <= 0 || scale == 1 {
		return n
	}
	v := int(math.Round(float64(n) * scale))
	if v < floor {
		v = floor
	}
	return v
}

// scaleDuration scales a seconds budget with a floor.
func scaleDuration(d, scale, floor float64) float64 {
	if scale <= 0 || scale == 1 {
		return d
	}
	v := d * scale
	if v < floor {
		v = floor
	}
	return v
}

// pickWorkers applies the RunOptions worker override.
func pickWorkers(cfg int, opts RunOptions) int {
	if opts.Workers > 0 {
		return opts.Workers
	}
	return cfg
}

// Run implements Scenario.
func (sc *scenario) Run(ctx context.Context, opts RunOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Scale < 0 {
		return nil, errors.New("core: scenario scale must be non-negative")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sys := sc.sys
	if opts.Seed != 0 && opts.Seed != sys.cfg.Seed {
		cfg := sys.cfg
		cfg.Seed = opts.Seed
		var err error
		sys, err = NewSystem(cfg)
		if err != nil {
			return nil, err
		}
	}
	if opts.Resume != nil {
		if _, ok := sc.spec.(DisclosureSpec); !ok {
			return nil, fmt.Errorf("core: RunOptions.Resume applies to disclosure scenarios, not %T", sc.spec)
		}
	}
	res := &Result{}
	switch sp := sc.spec.(type) {
	case AttackSetSpec:
		cfg := sp.Attack.withDefaults()
		cfg.Workers = pickWorkers(cfg.Workers, opts)
		cfg.TrainWindows = scaleCount(cfg.TrainWindows, opts.Scale, 2)
		cfg.EvalWindows = scaleCount(cfg.EvalWindows, opts.Scale, 2)
		r, err := sys.attackSet(cfg, sp.Features)
		if err != nil {
			return nil, err
		}
		res.AttackSet = r
	case SessionAttackSpec:
		cfg := sp.Session.withDefaults()
		cfg.Workers = pickWorkers(cfg.Workers, opts)
		cfg.TrainWindows = scaleCount(cfg.TrainWindows, opts.Scale, 2)
		cfg.EvalSessions = scaleCount(cfg.EvalSessions, opts.Scale, 1)
		r, err := sys.sessionAttack(cfg)
		if err != nil {
			return nil, err
		}
		res.Session = r
	case DisclosureSpec:
		r, err := sc.runDisclosure(ctx, sys, sp, opts)
		if err != nil {
			return nil, err
		}
		res.Disclosure = r
	case FlowCorrelationSpec:
		cfg := sp.Corr.withDefaults()
		cfg.Workers = pickWorkers(cfg.Workers, opts)
		cfg.Duration = scaleDuration(cfg.Duration, opts.Scale, 2*cfg.RateWindow)
		r, err := sys.flowCorrelation(sp.Population, cfg)
		if err != nil {
			return nil, err
		}
		res.FlowCorr = r
	case CascadeCorrelationSpec:
		cfg := sp.Corr.withDefaults()
		cfg.Workers = pickWorkers(cfg.Workers, opts)
		cfg.Duration = scaleDuration(cfg.Duration, opts.Scale, 2*cfg.RateWindow)
		r, err := sys.cascadeCorrelation(sp.Cascade, cfg)
		if err != nil {
			return nil, err
		}
		res.Cascade = r
	case ActiveDetectionSpec:
		spec := sp.Active.withDefaults()
		cfg := sp.Detect.withDefaults()
		cfg.Workers = pickWorkers(cfg.Workers, opts)
		// The matched filter needs at least one whole chip sequence.
		cfg.Duration = scaleDuration(cfg.Duration, opts.Scale, float64(spec.Chips)*spec.Period)
		r, err := sys.activeDetection(spec, cfg)
		if err != nil {
			return nil, err
		}
		res.Active = r
	default:
		return nil, fmt.Errorf("core: unknown scenario spec type %T", sc.spec)
	}
	return res, nil
}

// runDisclosure executes (or resumes) the round-based disclosure attack
// with context checks between estimator checkpoints. Chunking the round
// loop at CheckEvery granularity is result-invariant: DisclosureRun.Step
// folds rounds and tests checkpoints identically under any step split.
func (sc *scenario) runDisclosure(ctx context.Context, sys *System, sp DisclosureSpec, opts RunOptions) (*population.DisclosureResult, error) {
	cfg := sp.Disclosure
	// The population owns the dummy policy (Build enforced agreement).
	cfg.Dummies = sp.Population.Dummies
	// Seed the pool mix's retention stream from the system's master seed
	// (its own role in the population domain) before defaults would pin
	// the package-level fallback, so retention draws vary with the seed
	// like every other stream. An explicit MixSpec.Seed wins.
	if cfg.Mix.Kind == population.MixPool && cfg.Mix.Seed == 0 {
		cfg.Mix.Seed = sys.streamSeed(0, populationStreamID(0, popRoleMix))
	}
	cfg = cfg.WithDefaults(sp.Population.Users)
	cfg.Workers = pickWorkers(cfg.Workers, opts)
	// The budget floor keeps at least one estimator checkpoint in range.
	cfg.MaxRounds = scaleCount(cfg.MaxRounds, opts.Scale, cfg.CheckEvery)
	eng, err := sys.NewPopulation(sp.Population)
	if err != nil {
		return nil, err
	}
	if opts.Probe != nil {
		eng.SetProbe(opts.Probe)
	}
	var run *population.DisclosureRun
	if opts.Resume != nil {
		run, err = eng.ResumeDisclosure(cfg, opts.Resume)
	} else {
		run, err = eng.StartDisclosure(cfg)
	}
	if err != nil {
		return nil, err
	}
	for !run.Done() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if _, err := run.Step(cfg.CheckEvery); err != nil {
			return nil, err
		}
	}
	return run.Result(), nil
}
