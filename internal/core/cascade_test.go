package core

import (
	"reflect"
	"runtime"
	"testing"

	"linkpad/internal/analytic"
	"linkpad/internal/cascade"
	"linkpad/internal/traffic"
)

// twoHopSpec is the small cascade the determinism tests run: two CIT
// hops, eight flows.
func twoHopSpec() CascadeSpec {
	return CascadeSpec{Hops: make([]CascadeHop, 2), Flows: 8}
}

// Cascade results must be byte-identical at any worker width, mirroring
// the replica/session/population invariance tests: flows are the unit of
// parallelism and every flow's route derives from (seed, class, flowID)
// role streams alone.
func TestRunCascadeCorrelationWorkerInvariance(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := CascadeCorrConfig{
		Duration:      20,
		FeatureWindow: 100,
		TrainWindows:  12,
		Features:      []analytic.Feature{analytic.FeatureVariance},
	}
	run := func(workers int) *cascade.Result {
		c := cfg
		c.Workers = workers
		res, err := sys.RunCascadeCorrelation(twoHopSpec(), c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0), 0} {
		got := run(w)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: cascade result differs\n got %+v\nwant %+v", w, got, ref)
		}
	}
}

func TestCascadeSpecValidation(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	vit := CascadeHop{Policy: CascadeVIT, SigmaT: 30e-6}
	bad := []CascadeSpec{
		{Flows: 1, Hops: []CascadeHop{{}}},
		{Flows: 8, Hops: make([]CascadeHop, maxCascadeHops+1)},
		{Flows: 8, Hops: []CascadeHop{{Policy: CascadeVIT}}},
		{Flows: 8, Hops: []CascadeHop{{SigmaT: 1e-6}}},
		{Flows: 8, Hops: []CascadeHop{{MixK: 8}}},
		{Flows: 8, Hops: []CascadeHop{{Policy: CascadeMix, MixK: 1}}},
		{Flows: 8, Hops: []CascadeHop{{Policy: CascadeMix, SigmaT: 1e-6}}},
		{Flows: 8, Hops: []CascadeHop{{Tau: -1}}},
		{Flows: 8, Hops: []CascadeHop{{Policy: CascadePolicy(99)}}},
		{Flows: 8, Hops: []CascadeHop{{Link: &HopSpec{}}}},
		{Flows: 8, Hops: []CascadeHop{vit}, ClassMix: []float64{1}},
		{Flows: 8, Hops: []CascadeHop{vit}, ClassMix: []float64{1, 0}},
	}
	for i, spec := range bad {
		if _, err := sys.NewCascade(spec); err == nil {
			t.Errorf("spec %d (%+v) should fail validation", i, spec)
		}
	}
	good := []CascadeSpec{
		{Flows: 2}, // unpadded passthrough
		{Flows: 8, Hops: []CascadeHop{{}, vit, {Policy: CascadeMix}}},
		{Flows: 8, Hops: []CascadeHop{{Tau: 5e-3}}, ClassMix: []float64{3, 1}},
	}
	for i, spec := range good {
		if _, err := sys.NewCascade(spec); err != nil {
			t.Errorf("spec %d should validate: %v", i, err)
		}
	}
}

// A route is a pull-driven pipeline reusing every per-hop buffer: once
// warmed past the gateway queues' growth, pulling packets through the
// whole chain — payload source, three re-padding stages (CIT, mix, VIT),
// a hop link, and the entry recorder — allocates nothing.
func TestCascadeRouteAllocFree(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	link := &HopSpec{CapacityBps: 100e6, PacketBytes: 200, Util: traffic.Constant(0.2)}
	spec := CascadeSpec{
		Hops: []CascadeHop{
			{},
			{Policy: CascadeMix, Link: link},
			{Policy: CascadeVIT, SigmaT: 30e-6},
		},
		Flows: 2,
	}
	route, err := sys.buildRoute(spec, 1, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6000; i++ {
		route.Exit.Next()
	}
	avg := testing.AllocsPerRun(20, func() {
		route.Entry.Reset()
		for i := 0; i < 200; i++ {
			route.Exit.Next()
		}
	})
	if avg > 0 {
		t.Errorf("steady-state route pull allocates %v times per 200 packets", avg)
	}
}

// The system-level network path and tap imperfections must form the
// cascade's exit observation chain (the layering every protocol shares),
// not be silently ignored.
func TestCascadeHonorsExitObservationChain(t *testing.T) {
	cfg := DefaultLabConfig()
	cfg.Hops = []HopSpec{{
		CapacityBps: 100e6,
		PacketBytes: 200,
		Util:        traffic.Constant(0.2),
	}}
	cfg.TapLossProb = 0.05
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	attack := CascadeCorrConfig{Duration: 20}
	netRes, err := sys.RunCascadeCorrelation(twoHopSpec(), attack)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	cleanRes, err := clean.RunCascadeCorrelation(twoHopSpec(), attack)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(netRes, cleanRes) {
		t.Error("network path and tap loss left the cascade observations unchanged")
	}
}

// Flow classes stripe over ClassMix exactly like population users.
func TestCascadeClassMixStriping(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := CascadeSpec{Flows: 40, Hops: []CascadeHop{{}}, ClassMix: []float64{3, 1}}
	eng, err := sys.NewCascade(spec)
	if err != nil {
		t.Fatal(err)
	}
	cum := sys.classCum(spec.ClassMix)
	counts := [2]int{}
	for f := 0; f < spec.Flows; f++ {
		route, err := eng.Route(f)
		if err != nil {
			t.Fatal(err)
		}
		if route.Class != classOf(f, spec.Flows, cum) {
			t.Fatalf("flow %d class disagrees with striping", f)
		}
		counts[route.Class]++
	}
	if counts[0] != 30 || counts[1] != 10 {
		t.Errorf("class mix 3:1 over 40 flows gave %v, want [30 10]", counts)
	}
}
