package active

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"linkpad/internal/adversary"
	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// sourceStream adapts a traffic.Source to the absolute-time stream
// contract, mimicking an unpadded link.
type sourceStream struct {
	src traffic.Source
	now float64
}

func (s *sourceStream) Next() float64 {
	s.now += s.src.Next()
	return s.now
}

// chaffEngine builds a synthetic unpadded scenario: each flow is Poisson
// payload superposed with keyed chaff (or plain payload when amp == 0),
// entirely inside the test — no core wiring.
func chaffEngine(t *testing.T, flows int, amp float64) *Engine {
	t.Helper()
	const chips, period = 32, 0.5
	decoys := make([]*Key, 12)
	for i := range decoys {
		decoys[i] = testKey(t, chips, period, uint64(1000+i))
	}
	build := func(f int) (*Flow, error) {
		key := testKey(t, chips, period, uint64(10+f))
		payload, err := traffic.NewPoisson(30, xrand.New(uint64(500+f)))
		if err != nil {
			return nil, err
		}
		var src traffic.Source = payload
		var inject func() InjectStats
		if amp > 0 {
			chaff, err := NewChaffSource(key, amp, xrand.New(uint64(900+f)))
			if err != nil {
				return nil, err
			}
			src, err = traffic.NewSuperpose(payload, chaff)
			if err != nil {
				return nil, err
			}
			inject = func() InjectStats { return chaff.Stats() }
		}
		return &Flow{Key: key, Exit: &sourceStream{src: src}, Inject: inject}, nil
	}
	e, err := NewEngine(flows, 0, ModeChaff, chips, period, decoys, build)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// A strong chaff watermark on an unpadded stream must be detected for
// every flow, matched to the right flow, and leave essentially no
// anonymity; removing the watermark must drop detection to the decoy
// false-positive floor.
func TestDetectSyntheticChaff(t *testing.T) {
	cfg := Config{Duration: 40}
	res, err := Detect(chaffEngine(t, 6, 30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 80 || res.Flows != 6 || res.Mode != "chaff" {
		t.Fatalf("echo fields wrong: %+v", res)
	}
	if res.DetectionRate != 1 {
		t.Fatalf("watermarked flows: detection %v, want 1 (z %v)", res.DetectionRate, res.ZTrue)
	}
	if res.MatchAccuracy != 1 || res.MeanRank != 1 {
		t.Fatalf("matching: acc %v rank %v, want perfect", res.MatchAccuracy, res.MeanRank)
	}
	if res.DegreeOfAnonymity > 0.3 {
		t.Fatalf("anonymity %v, want near 0 for an unpadded watermark", res.DegreeOfAnonymity)
	}
	if res.MeanZ < 5 {
		t.Fatalf("mean z %v, want strong", res.MeanZ)
	}
	// Injection accounting: chaff at 30 pps × duty cycle, counted over
	// the generated timeline.
	if res.InjectedPPS < 5 || res.InjectedPPS > 30 {
		t.Fatalf("injected pps %v out of range", res.InjectedPPS)
	}
	if res.MeanAddedDelay != 0 {
		t.Fatalf("chaff mode must not report added delay, got %v", res.MeanAddedDelay)
	}
	// Unpadded: route rate ≈ payload + injected chaff.
	if res.RoutePPS < 30 || res.RoutePPS > 50 {
		t.Fatalf("route pps %v, want ≈ payload+chaff", res.RoutePPS)
	}

	null, err := Detect(chaffEngine(t, 6, 1e-9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if null.DetectionRate > 0.2 {
		t.Fatalf("unwatermarked flows: detection %v, want ≈ 0 (z %v)", null.DetectionRate, null.ZTrue)
	}
	if null.DegreeOfAnonymity < 0.5 {
		t.Fatalf("unwatermarked anonymity %v, want high", null.DegreeOfAnonymity)
	}
}

// Detection must be byte-identical at any worker width: flows are the
// unit of parallelism and every reduction runs in flow order.
func TestDetectWorkerInvariance(t *testing.T) {
	run := func(workers int) *Result {
		res, err := Detect(chaffEngine(t, 5, 25), Config{Duration: 24, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0), 0} {
		if got := run(w); !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: result differs\n got %+v\nwant %+v", w, got, ref)
		}
	}
}

func TestDetectValidation(t *testing.T) {
	e := chaffEngine(t, 4, 20)
	if _, err := Detect(nil, Config{Duration: 20}); err == nil {
		t.Error("nil engine should fail")
	}
	if _, err := Detect(e, Config{}); err == nil {
		t.Error("zero duration should fail")
	}
	if _, err := Detect(e, Config{Duration: 1}); err == nil {
		t.Error("too few slots should fail")
	}
	if _, err := Detect(e, Config{Duration: 20, Threshold: -1}); err == nil {
		t.Error("negative threshold should fail")
	}
}

func TestSlotStats(t *testing.T) {
	// Two slots of width 1: slot 0 holds {0.1, 0.3, 0.7}, slot 1 holds
	// {1.5, 1.6}; a stray time past the window is ignored.
	times := []float64{0.1, 0.3, 0.7, 1.5, 1.6, 2.4}
	counts := make([]float64, 2)
	vars := make([]float64, 2)
	cents := make([]float64, 2)
	slotStats(times, 0, 1, 2, counts, vars, cents)
	if counts[0] != 3 || counts[1] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	// Slot 0 PIATs within the slot: {0.2, 0.4} → sample variance 0.02.
	if math.Abs(vars[0]-0.02) > 1e-12 {
		t.Fatalf("vars[0] = %v, want 0.02", vars[0])
	}
	// Slot 1 has a single within-slot PIAT → variance undefined → 0.
	if vars[1] != 0 {
		t.Fatalf("vars[1] = %v, want 0", vars[1])
	}
	// Centroids: mean in-slot position − 0.5.
	want0 := (0.1+0.3+0.7)/3 - 0.5
	want1 := (0.5+0.6)/2 - 0.5
	if math.Abs(cents[0]-want0) > 1e-12 || math.Abs(cents[1]-want1) > 1e-12 {
		t.Fatalf("cents = %v, want [%v %v]", cents, want0, want1)
	}
}

// The delay watermark must be detectable on an unpadded stream through
// the centroid/count channels.
func TestDetectSyntheticDelay(t *testing.T) {
	const chips, period = 32, 0.5
	decoys := make([]*Key, 12)
	for i := range decoys {
		decoys[i] = testKey(t, chips, period, uint64(2000+i))
	}
	build := func(f int) (*Flow, error) {
		key := testKey(t, chips, period, uint64(50+f))
		payload, err := traffic.NewPoisson(40, xrand.New(uint64(700+f)))
		if err != nil {
			return nil, err
		}
		ds, err := NewDelaySource(payload, key, 0.15)
		if err != nil {
			return nil, err
		}
		return &Flow{
			Key:    key,
			Exit:   &sourceStream{src: ds},
			Inject: func() InjectStats { return ds.Stats() },
		}, nil
	}
	e, err := NewEngine(5, 0, ModeDelay, chips, period, decoys, build)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(e, Config{Duration: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectionRate < 0.8 {
		t.Fatalf("delay watermark detection %v, want ≥ 0.8 (z %v)", res.DetectionRate, res.ZTrue)
	}
	if res.MeanAddedDelay <= 0 || res.MeanAddedDelay > 0.15 {
		t.Fatalf("mean added delay %v, want in (0, amplitude]", res.MeanAddedDelay)
	}
	if res.InjectedPPS != 0 {
		t.Fatalf("delay mode must not report chaff, got %v", res.InjectedPPS)
	}
}

// The detection hot path's allocation discipline: the per-slot channel
// reduction and the calibrate-and-score loop — the work repeated per
// flow and per (key, exit) pair — run on preallocated buffers and
// allocate nothing.
func TestDetectAllocDiscipline(t *testing.T) {
	const slots, chips, period = 90, 32, 0.5
	key := testKey(t, chips, period, 42)
	rng := xrand.New(7)
	times := make([]float64, 0, 4096)
	now := 0.0
	for now < slots*period {
		now += rng.Exp(1.0 / 30)
		times = append(times, now)
	}
	counts := make([]float64, slots)
	vars := make([]float64, slots)
	cents := make([]float64, slots)
	chipVec := make([]float64, slots)
	if n := testing.AllocsPerRun(20, func() {
		slotStats(times, 0, period, slots, counts, vars, cents)
	}); n > 0 {
		t.Errorf("slotStats allocates %v per reduction, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		fillChips(chipVec, key, 3)
		if _, err := adversary.Pearson(chipVec, counts); err != nil {
			t.Fatal(err)
		}
		meanStd(counts)
	}); n > 0 {
		t.Errorf("scoring loop allocates %v per pair, want 0", n)
	}
}
