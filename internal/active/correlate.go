package active

import (
	"errors"
	"fmt"
	"math"

	"linkpad/internal/adversary"
	"linkpad/internal/bayes"
	"linkpad/internal/cascade"
	"linkpad/internal/par"
)

// Matched-filter detection (correlate.go): the adversary reduces each
// exit stream to three per-slot channels and correlates every channel
// against candidate keys' chip sequences:
//
//   - count: packets per slot — the rate channel. Chaff survives here
//     whenever the countermeasure forwards rate fluctuations (unpadded
//     links, batching mixes); timer padding flattens it.
//   - variance: PIAT sample variance per slot — the paper's blocking
//     channel weaponized. Timer gateways emit at a constant rate, but
//     marked-slot arrivals (chaff, or pile-ups behind a delay watermark)
//     inflate the compound blocking jitter, so the PIATs of marked slots
//     are measurably noisier.
//   - centroid: mean in-slot position of packet times — the
//     interval-centroid channel of delay watermarking. A constant delay
//     shifts marked-slot packets late within their slot; timer padding
//     erases it because departures sit on the timer grid.
//
// Each channel's Pearson correlation is calibrated into a z-score
// against the engine's decoy keys evaluated on the same exit flow, so
// the detector normalizes per-flow, per-channel noise (whatever the
// countermeasure made of it) without hand-tuned thresholds; a flow's
// score is the best channel's z. The flow's own key detects the
// watermark (z ≥ threshold); the full key × exit score matrix yields
// greedy flow matching and the degree of anonymity, exactly as in the
// passive correlation attacks.

// Config parameterizes the matched-filter detection pass.
type Config struct {
	// Duration is the observation time in stream seconds past each
	// flow's Start (required); the matched filter uses
	// floor(Duration/period) whole slots.
	Duration float64
	// Threshold is the detection z-score (0 = 3: a ~0.1% false-positive
	// rate against the decoy-calibrated null).
	Threshold float64
	// FeatureWindow is the PIAT count reduced to one feature value per
	// flow for the class posteriors (0 = 200); it must match the window
	// the classifiers were trained at.
	FeatureWindow int
	// Classifiers holds one per-feature class classifier (naive-Bayes
	// combined); may be empty to skip the class-posterior stage.
	// Extractors must parallel it.
	Classifiers []*bayes.Classifier
	// Extractors are the feature extractors matching Classifiers.
	Extractors []adversary.Extractor
	// Workers bounds the per-flow simulation parallelism; results are
	// identical at any width. Zero means all CPUs.
	Workers int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = 3
	}
	if c.FeatureWindow == 0 {
		c.FeatureWindow = 200
	}
	return c
}

// Result reports one active-adversary detection run.
type Result struct {
	// Flows, Hops and Mode echo the engine.
	Flows int
	Hops  int
	Mode  string
	// Slots is the number of matched-filter slots per flow.
	Slots int
	// DetectionRate is the fraction of flows whose own watermark key
	// scored z ≥ threshold at that flow's exit.
	DetectionRate float64
	// MeanZ averages the own-key z-score over flows — the raw strength
	// of the watermark surviving the countermeasure.
	MeanZ float64
	// ZTrue is each flow's own-key z-score, in flow order.
	ZTrue []float64
	// MatchAccuracy is the fraction of exit flows the greedy matching
	// assigned to their true key.
	MatchAccuracy float64
	// MeanRank averages the rank (1 = best) of the true key in each exit
	// flow's score ordering.
	MeanRank float64
	// DegreeOfAnonymity averages the normalized entropy of the per-flow
	// match posterior (softmax over each exit flow's z column): 1 means
	// the watermark tells the adversary nothing, 0 means identified.
	DegreeOfAnonymity float64
	// ClassAccuracy is the fraction of flows whose rate class the exit
	// PIAT features identified (0 when no classifiers were supplied).
	ClassAccuracy float64
	// InjectedPPS is the attacker's mean chaff rate per flow in
	// packets/second (0 in delay mode).
	InjectedPPS float64
	// MeanAddedDelay is the mean injected delay per payload packet in
	// seconds (0 in chaff mode).
	MeanAddedDelay float64
	// HopPPS is each hop's mean emitted packet rate per flow, entry hop
	// first; HopDummyFrac is each hop's dummy fraction.
	HopPPS       []float64
	HopDummyFrac []float64
	// RoutePPS sums HopPPS — the defense's bandwidth per flow. For
	// unpadded flows it is the exit stream's observed rate.
	RoutePPS float64
	// DummyFrac is the whole route's dummy fraction.
	DummyFrac float64
}

// channels is the number of matched-filter channels (count, variance,
// centroid).
const channels = 3

// flowObs is the reduced observation of one flow: per-slot channel
// vectors plus the bookkeeping the sequential reduction needs.
type flowObs struct {
	class     int
	key       *Key
	k0        int       // first whole slot of the observation window
	start     float64   // absolute start of the observation window
	end       float64   // absolute end of the observation window
	stats     []float64 // [channels][slots] flattened
	logPost   []float64 // class log posteriors (clamped); nil without classifiers
	hops      []cascade.HopStats
	inject    InjectStats
	exitCount int
}

// channel returns the obs's per-slot vector for channel ch.
func (o *flowObs) channel(ch, slots int) []float64 {
	return o.stats[ch*slots : (ch+1)*slots]
}

// Detect runs the matched-filter attack end to end: simulate every
// watermarked flow (in parallel, flows as the unit of parallelism),
// reduce each exit to its per-slot channels, calibrate against the
// decoy keys, score every (key, exit) pair, and account the injection
// and padding overhead. Exit flow f's true key is flow f's key; the
// adversary's scores never read that identity, only the observations.
func Detect(e *Engine, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if e == nil {
		return nil, errors.New("active: nil engine")
	}
	if !(cfg.Duration > 0) {
		return nil, errors.New("active: observation duration must be positive")
	}
	if len(cfg.Classifiers) != len(cfg.Extractors) {
		return nil, errors.New("active: classifiers and extractors must parallel each other")
	}
	if cfg.FeatureWindow < 2 {
		return nil, errors.New("active: feature window must be at least 2")
	}
	if !(cfg.Threshold > 0) {
		return nil, errors.New("active: detection threshold must be positive")
	}
	slots := int(cfg.Duration/e.period + 1e-9)
	if slots < 8 {
		return nil, errors.New("active: need at least eight whole slots over the duration")
	}

	flows := e.flows
	obs := make([]flowObs, flows)
	workers := par.Workers(cfg.Workers)
	if workers > flows {
		workers = flows
	}
	pipes := make([]*adversary.MultiPipeline, workers)
	outs := make([][]float64, workers)
	exits := make([][]float64, workers) // reusable per-worker exit-time slabs
	piats := make([][]float64, workers)
	lps := make([][]float64, workers)
	for i := range pipes {
		if len(cfg.Extractors) > 0 {
			mp, err := adversary.NewMultiPipeline(cfg.Extractors)
			if err != nil {
				return nil, err
			}
			pipes[i] = mp
			outs[i] = make([]float64, len(cfg.Extractors))
		}
	}
	err := par.MapWorker(flows, workers, func(worker, f int) error {
		flow, err := e.Flow(f)
		if err != nil {
			return fmt.Errorf("active: flow %d: %w", f, err)
		}
		o := &obs[f]
		o.class = flow.Class
		o.key = flow.Key
		if flow.Start > 0 {
			o.k0 = int(flow.Start/e.period) + 1
		}
		start := float64(o.k0) * e.period
		o.start = start
		o.end = start + float64(slots)*e.period
		// Pull the exit stream through the whole chain into the worker's
		// reusable slab, dropping the partial-slot head after a warm-up.
		buf := exits[worker][:0]
		for {
			t := flow.Exit.Next()
			if t > o.end {
				break
			}
			if t <= start {
				continue
			}
			buf = append(buf, t)
		}
		exits[worker] = buf
		// The flow's observation is complete and this worker owns its
		// telemetry shard: publish the chain's counters (nil-safe).
		flow.Probe.Flush()
		o.exitCount = len(buf)
		o.stats = make([]float64, channels*slots)
		slotStats(buf, start, e.period, slots,
			o.channel(0, slots), o.channel(1, slots), o.channel(2, slots))
		if flow.Inject != nil {
			o.inject = flow.Inject()
		}
		o.hops = make([]cascade.HopStats, len(flow.Hops))
		for h, probe := range flow.Hops {
			o.hops[h] = probe()
		}
		if len(cfg.Classifiers) == 0 {
			return nil
		}
		// Reduce the exit flow's first FeatureWindow PIATs to one value
		// per feature, then to clamped class log posteriors.
		if len(buf) < cfg.FeatureWindow+1 {
			return fmt.Errorf("active: flow %d has %d exit packets, need %d for the feature window",
				f, len(buf), cfg.FeatureWindow+1)
		}
		pb := piats[worker]
		if cap(pb) < cfg.FeatureWindow {
			pb = make([]float64, cfg.FeatureWindow)
		}
		pb = pb[:cfg.FeatureWindow]
		for i := range pb {
			pb[i] = buf[i+1] - buf[i]
		}
		piats[worker] = pb
		if err := pipes[worker].ExtractFrom(adversary.NewReplay(pb), cfg.FeatureWindow, outs[worker]); err != nil {
			return err
		}
		o.logPost = make([]float64, cfg.Classifiers[0].NumClasses())
		for fi, cls := range cfg.Classifiers {
			lp := cls.LogPosteriorsInto(outs[worker][fi], lps[worker])
			lps[worker] = lp
			adversary.AddClampedLogPosts(o.logPost, lp)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Sequential scoring in flow order: per exit flow, calibrate each
	// channel's null against the decoys, then z-score every candidate
	// key's best channel.
	chipVec := make([]float64, slots)
	decoyR := make([]float64, len(e.decoys))
	score := make([]float64, flows*flows)
	var mu, sigma [channels]float64
	for f := 0; f < flows; f++ {
		o := &obs[f]
		for ch := 0; ch < channels; ch++ {
			stat := o.channel(ch, slots)
			for d, dk := range e.decoys {
				fillChips(chipVec, dk, o.k0)
				r, err := adversary.Pearson(chipVec, stat)
				if err != nil {
					return nil, err
				}
				decoyR[d] = r
			}
			mu[ch], sigma[ch] = meanStd(decoyR)
		}
		for u := 0; u < flows; u++ {
			fillChips(chipVec, obs[u].key, o.k0)
			best := 0.0
			for ch := 0; ch < channels; ch++ {
				if sigma[ch] < 1e-9 {
					continue // degenerate channel: no information
				}
				r, err := adversary.Pearson(chipVec, o.channel(ch, slots))
				if err != nil {
					return nil, err
				}
				if z := (r - mu[ch]) / sigma[ch]; z > best {
					best = z
				}
			}
			score[u*flows+f] = best
		}
	}
	assignedF, err := adversary.GreedyMatch(score, flows)
	if err != nil {
		return nil, err
	}

	res := &Result{Flows: flows, Hops: e.hops, Mode: e.mode.String(), Slots: slots,
		ZTrue: make([]float64, flows)}
	detected, correct, classCorrect := 0, 0, 0
	var zSum, rankSum, anonSum float64
	post := make([]float64, flows)
	for f := 0; f < flows; f++ {
		z := score[f*flows+f]
		res.ZTrue[f] = z
		zSum += z
		if z >= cfg.Threshold {
			detected++
		}
		if assignedF[f] == f {
			correct++
		}
		rankSum += float64(adversary.TrueRank(score, flows, f))
		anonSum += columnAnonymity(score, flows, f, post)
		if obs[f].logPost != nil {
			best, bestV := 0, obs[f].logPost[0]
			for c := 1; c < len(obs[f].logPost); c++ {
				if obs[f].logPost[c] > bestV {
					best, bestV = c, obs[f].logPost[c]
				}
			}
			if best == obs[f].class {
				classCorrect++
			}
		}
	}
	n := float64(flows)
	res.DetectionRate = float64(detected) / n
	res.MeanZ = zSum / n
	res.MatchAccuracy = float64(correct) / n
	res.MeanRank = rankSum / n
	res.DegreeOfAnonymity = anonSum / n
	if len(cfg.Classifiers) > 0 {
		res.ClassAccuracy = float64(classCorrect) / n
	}
	reduceOverhead(res, obs, e.hops)
	return res, nil
}

// reduceOverhead accounts the injection cost and the defense's bandwidth
// in flow order, mirroring the cascade accounting. Hop and injection
// counters cover each flow's whole timeline [0, end] (warm-up included),
// so rates divide by the end time, not the observation duration.
func reduceOverhead(res *Result, obs []flowObs, hops int) {
	var endSum, chaffSum, delaySum, payloadSum float64
	for f := range obs {
		endSum += obs[f].end
		chaffSum += float64(obs[f].inject.Chaff)
		delaySum += obs[f].inject.DelaySum
		payloadSum += float64(obs[f].inject.Payload)
	}
	if endSum > 0 {
		res.InjectedPPS = chaffSum / endSum
	}
	if payloadSum > 0 {
		res.MeanAddedDelay = delaySum / payloadSum
	}
	if hops > 0 {
		res.HopPPS = make([]float64, hops)
		res.HopDummyFrac = make([]float64, hops)
		var emittedAll, dummiesAll float64
		for h := 0; h < hops; h++ {
			var emitted, dummies float64
			for f := range obs {
				emitted += float64(obs[f].hops[h].Emitted)
				dummies += float64(obs[f].hops[h].Dummies)
			}
			res.HopPPS[h] = emitted / endSum
			if emitted > 0 {
				res.HopDummyFrac[h] = dummies / emitted
			}
			res.RoutePPS += res.HopPPS[h]
			emittedAll += emitted
			dummiesAll += dummies
		}
		if emittedAll > 0 {
			res.DummyFrac = dummiesAll / emittedAll
		}
	} else {
		// Unpadded flows: the exit counts cover only the observed window
		// (start, end] — warm-up packets of a session scenario were
		// discarded — so the rate averages over the window, not the
		// whole timeline.
		var exitAll, obsSum float64
		for f := range obs {
			exitAll += float64(obs[f].exitCount)
			obsSum += obs[f].end - obs[f].start
		}
		if obsSum > 0 {
			res.RoutePPS = exitAll / obsSum
		}
	}
}

// slotStats reduces an ascending timestamp slice to the three matched-
// filter channels over `slots` consecutive windows of width period
// starting at start. counts, vars and cents must each have length slots
// and are overwritten.
func slotStats(times []float64, start, period float64, slots int, counts, vars, cents []float64) {
	for i := 0; i < slots; i++ {
		counts[i], vars[i], cents[i] = 0, 0, 0
	}
	cur := -1
	var prev float64
	var m moments // PIAT moments of the current slot
	flush := func() {
		if cur >= 0 {
			vars[cur] = m.variance()
			if counts[cur] > 0 {
				cents[cur] /= counts[cur]
			}
		}
	}
	for _, t := range times {
		s := int((t - start) / period)
		if s < 0 || s >= slots {
			continue
		}
		if s != cur {
			flush()
			cur = s
			m = moments{}
		} else {
			m.add(t - prev)
		}
		prev = t
		counts[s]++
		cents[s] += (t-start)/period - float64(s) - 0.5
	}
	flush()
}

// moments is a minimal Welford accumulator for per-slot PIAT variance
// (kept local so the hot loop stays allocation-free and inlinable).
type moments struct {
	n    int
	mean float64
	m2   float64
}

func (m *moments) add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

func (m *moments) variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// fillChips writes key's chip sequence for slots k0..k0+len(dst)-1.
func fillChips(dst []float64, key *Key, k0 int) {
	for j := range dst {
		dst[j] = key.Chip(k0 + j)
	}
}

// meanStd returns the sample mean and standard deviation of xs.
func meanStd(xs []float64) (mean, std float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var s2 float64
	for _, x := range xs {
		d := x - mean
		s2 += d * d
	}
	if len(xs) > 1 {
		std = math.Sqrt(s2 / (n - 1))
	}
	return mean, std
}

// columnAnonymity returns the normalized entropy of the softmax over
// exit flow f's score column — the degree of anonymity of that flow's
// match posterior. tmp must have length n.
func columnAnonymity(score []float64, n, f int, tmp []float64) float64 {
	max := math.Inf(-1)
	for u := 0; u < n; u++ {
		if s := score[u*n+f]; s > max {
			max = s
		}
	}
	var sum float64
	for u := 0; u < n; u++ {
		tmp[u] = math.Exp(score[u*n+f] - max)
		sum += tmp[u]
	}
	var h float64
	for u := 0; u < n; u++ {
		p := tmp[u] / sum
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h / math.Log(float64(n))
}
