package active

import (
	"math"
	"testing"

	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

func testKey(t *testing.T, chips int, period float64, seed uint64) *Key {
	t.Helper()
	k, err := NewKey(chips, period, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKeyDeterministicAndCyclic(t *testing.T) {
	k1 := testKey(t, 32, 0.5, 7)
	k2 := testKey(t, 32, 0.5, 7)
	on := 0
	for s := 0; s < 32; s++ {
		if k1.Chip(s) != k2.Chip(s) {
			t.Fatalf("chip %d differs between identically seeded keys", s)
		}
		if c := k1.Chip(s); c != 1 && c != -1 {
			t.Fatalf("chip %d = %v, want ±1", s, c)
		}
		if k1.Chip(s) != k1.Chip(s+32) || k1.Chip(s) != k1.Chip(s+64) {
			t.Fatalf("chip %d not cyclic", s)
		}
		if k1.Chip(s) > 0 {
			on++
		}
	}
	if got := k1.OnFraction(); got != float64(on)/32 {
		t.Fatalf("OnFraction = %v, want %v", got, float64(on)/32)
	}
	// A fair 32-chip key is essentially never all-on or all-off; the
	// specific seed used here must have both kinds so Marked means
	// something.
	if on == 0 || on == 32 {
		t.Fatalf("degenerate test key: %d of 32 chips on", on)
	}
	if k1.Marked(-1) {
		t.Fatal("negative times must not be marked")
	}
	for s := 0; s < 32; s++ {
		mid := (float64(s) + 0.5) * k1.Period()
		if k1.Marked(mid) != (k1.Chip(s) > 0) {
			t.Fatalf("Marked(%v) disagrees with Chip(%d)", mid, s)
		}
	}

	if _, err := NewKey(1, 0.5, xrand.New(1)); err == nil {
		t.Error("single-chip key should fail")
	}
	if _, err := NewKey(8, 0, xrand.New(1)); err == nil {
		t.Error("zero period should fail")
	}
	if _, err := NewKey(8, 0.5, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

// collect drains n arrivals of a source into absolute times.
func collect(src traffic.Source, n int) []float64 {
	out := make([]float64, n)
	var now float64
	for i := range out {
		now += src.Next()
		out[i] = now
	}
	return out
}

func TestDelaySourceShiftsMarkedSlots(t *testing.T) {
	key := testKey(t, 16, 0.25, 3)
	const amp = 0.02
	mk := func() traffic.Source {
		cbr, err := traffic.NewCBR(40, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		return cbr
	}
	plain := collect(mk(), 400)
	ds, err := NewDelaySource(mk(), key, amp)
	if err != nil {
		t.Fatal(err)
	}
	marked := collect(ds, 400)
	prev := math.Inf(-1)
	for i, tm := range marked {
		if tm <= prev {
			t.Fatalf("arrival %d not strictly increasing: %v after %v", i, tm, prev)
		}
		prev = tm
		want := plain[i]
		if key.Marked(plain[i]) {
			want += amp
		}
		// A shifted packet may be pushed further to preserve order, but
		// only by nanoseconds.
		if tm < want || tm > want+1e-6 {
			t.Fatalf("arrival %d = %v, want %v (marked=%v)", i, tm, want, key.Marked(plain[i]))
		}
	}
	st := ds.Stats()
	if st.Payload != 400 {
		t.Fatalf("Payload = %d, want 400", st.Payload)
	}
	if st.Delayed == 0 || st.Delayed == 400 {
		t.Fatalf("Delayed = %d, want a proper subset of 400", st.Delayed)
	}
	if got, want := st.DelaySum, float64(st.Delayed)*amp; math.Abs(got-want) > 1e-12 {
		t.Fatalf("DelaySum = %v, want %v", got, want)
	}
	if ds.Rate() != 40 {
		t.Fatalf("Rate = %v, want the payload rate", ds.Rate())
	}

	if _, err := NewDelaySource(nil, key, amp); err == nil {
		t.Error("nil source should fail")
	}
	if _, err := NewDelaySource(mk(), nil, amp); err == nil {
		t.Error("nil key should fail")
	}
	if _, err := NewDelaySource(mk(), key, 0); err == nil {
		t.Error("zero amplitude should fail")
	}
}

func TestChaffSourceRunsOnlyInMarkedSlots(t *testing.T) {
	key := testKey(t, 16, 0.25, 5)
	const rate = 80.0
	cs, err := NewChaffSource(key, rate, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	times := collect(cs, 2000)
	for i, tm := range times {
		if i > 0 && tm <= times[i-1] {
			t.Fatalf("chaff %d not increasing", i)
		}
		if !key.Marked(tm) {
			t.Fatalf("chaff %d at %v lands in an unmarked slot", i, tm)
		}
	}
	// The long-run rate matches rate × duty cycle.
	span := times[len(times)-1]
	got := float64(len(times)) / span
	want := cs.Rate()
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("long-run rate %v, want ≈ %v", got, want)
	}
	if want != rate*key.OnFraction() {
		t.Fatalf("Rate() = %v, want %v", want, rate*key.OnFraction())
	}
	if cs.Stats().Chaff != 2000 {
		t.Fatalf("Chaff = %d, want 2000", cs.Stats().Chaff)
	}

	if _, err := NewChaffSource(nil, rate, xrand.New(1)); err == nil {
		t.Error("nil key should fail")
	}
	if _, err := NewChaffSource(key, 0, xrand.New(1)); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := NewChaffSource(key, rate, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

// Two identically seeded chaff sources generate the identical stream —
// the determinism contract core's flow builders rely on.
func TestChaffSourceDeterministic(t *testing.T) {
	key := testKey(t, 32, 0.5, 9)
	mk := func() []float64 {
		cs, err := NewChaffSource(key, 25, xrand.New(42))
		if err != nil {
			t.Fatal(err)
		}
		return collect(cs, 500)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chaff stream diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEngineValidation(t *testing.T) {
	decoys := make([]*Key, 8)
	for i := range decoys {
		decoys[i] = testKey(t, 16, 0.5, uint64(100+i))
	}
	build := func(int) (*Flow, error) { return nil, nil }
	if _, err := NewEngine(1, 0, ModeChaff, 16, 0.5, decoys, build); err == nil {
		t.Error("single flow should fail")
	}
	if _, err := NewEngine(4, -1, ModeChaff, 16, 0.5, decoys, build); err == nil {
		t.Error("negative hops should fail")
	}
	if _, err := NewEngine(4, 0, Mode(9), 16, 0.5, decoys, build); err == nil {
		t.Error("unknown mode should fail")
	}
	if _, err := NewEngine(4, 0, ModeChaff, 16, 0.5, decoys[:4], build); err == nil {
		t.Error("too few decoys should fail")
	}
	bad := append(append([]*Key(nil), decoys[:7]...), testKey(t, 8, 0.5, 200))
	if _, err := NewEngine(4, 0, ModeChaff, 16, 0.5, bad, build); err == nil {
		t.Error("geometry-mismatched decoy should fail")
	}
	if _, err := NewEngine(4, 0, ModeChaff, 16, 0.5, decoys, nil); err == nil {
		t.Error("nil builder should fail")
	}
	e, err := NewEngine(4, 0, ModeChaff, 16, 0.5, decoys, build)
	if err != nil {
		t.Fatal(err)
	}
	if e.Flows() != 4 || e.Hops() != 0 || e.Mode() != ModeChaff {
		t.Fatalf("engine accessors: %d flows, %d hops, mode %v", e.Flows(), e.Hops(), e.Mode())
	}
	if _, err := e.Flow(4); err == nil {
		t.Error("out-of-range flow should fail")
	}
}
