// Package active models the active traffic-analysis adversary: instead
// of passively tapping the padded link, the attacker controls a vantage
// point on the *payload side* of the countermeasure — a compromised ISP,
// guard relay, or messaging server (Bahramali et al. 2020, "Practical
// Traffic Analysis Attacks on Secure Messaging Applications") — and
// injects a secret, keyed perturbation ("watermark") into a flow before
// it enters the padding, hoping to recognize the key again at the exit
// tap and thereby link the two observation points through every
// countermeasure in between.
//
// Two injection mechanisms are modeled, both keyed by a cyclic ±1 chip
// schedule (Key) of period·chips seconds:
//
//   - delay-jitter watermarks (DelaySource): payload packets that arrive
//     during a marked chip slot are delayed by a constant amplitude,
//     imprinting an interval-centroid pattern on the flow's timing;
//   - chaff probes (ChaffSource): the attacker mints its own payload
//     packets — indistinguishable from real ones once encrypted — as a
//     keyed on/off Poisson process, imprinting a rate pattern.
//
// Detection (correlate.go) is a matched filter: the exit stream is
// reduced to per-slot statistics (packet count, PIAT variance, in-slot
// centroid) and each channel is correlated against the key's chip
// sequence; scores are calibrated into z-values against decoy keys, so
// the detector self-adjusts to every countermeasure's noise floor. The
// per-slot PIAT-variance channel is the paper's own leak turned into a
// signal: under timer padding the wire rate is constant, but chaff
// modulates the gateway's compound blocking delay (gateway.JitterModel),
// so marked slots carry measurably noisier PIATs.
//
// The package follows the repository's determinism discipline: core
// derives every key, chaff stream and chain element from (seed, class,
// flowID, role) streams in the active stream domain, so a watermarked
// flow is a pure function of its flow identity and flows — the unit of
// parallelism — never share randomness. Detection reuses per-worker
// observation slabs and per-flow stat vectors sized once, so a warmed
// detection pass allocates only the per-flow observation records.
package active

import (
	"errors"

	"linkpad/internal/cascade"
	"linkpad/internal/netem"
	"linkpad/internal/obs"
	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// Mode selects the watermark injection mechanism.
type Mode int

// Supported watermark modes.
const (
	// ModeDelay imposes a keyed constant delay on marked-slot payload.
	ModeDelay Mode = iota
	// ModeChaff injects attacker-minted packets in a keyed on/off pattern.
	ModeChaff
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeDelay:
		return "delay"
	case ModeChaff:
		return "chaff"
	default:
		return "unknown"
	}
}

// Key is a watermark key: a cyclic chip schedule assigning each time
// slot of the given period a chip of +1 (marked) or −1 (unmarked). The
// schedule repeats every Chips()·Period() seconds, so a key supports
// observations of any duration and any start offset.
type Key struct {
	period float64
	chips  []float64 // ±1 per slot of one cycle
	on     int       // number of +1 chips
}

// NewKey draws a key of `chips` fair ±1 chips over slots of `period`
// seconds. The chip draws consume exactly `chips` Bernoulli variates of
// rng, so a key is a pure function of its role stream.
func NewKey(chips int, period float64, rng *xrand.Rand) (*Key, error) {
	if chips < 2 {
		return nil, errors.New("active: key needs at least two chips")
	}
	if !(period > 0) {
		return nil, errors.New("active: chip period must be positive")
	}
	if rng == nil {
		return nil, errors.New("active: nil rng")
	}
	k := &Key{period: period, chips: make([]float64, chips)}
	for i := range k.chips {
		if rng.Bernoulli(0.5) {
			k.chips[i] = 1
			k.on++
		} else {
			k.chips[i] = -1
		}
	}
	return k, nil
}

// Chips returns the key length in chips (one schedule cycle).
func (k *Key) Chips() int { return len(k.chips) }

// Period returns the chip slot duration in seconds.
func (k *Key) Period() float64 { return k.period }

// Chip returns the chip of slot index s (cyclic; s must be >= 0).
func (k *Key) Chip(s int) float64 { return k.chips[s%len(k.chips)] }

// OnFraction returns the fraction of marked (+1) chips — the duty cycle
// of the injection, which prices the watermark's overhead.
func (k *Key) OnFraction() float64 { return float64(k.on) / float64(len(k.chips)) }

// Marked reports whether absolute time t falls in a marked slot.
func (k *Key) Marked(t float64) bool {
	if t < 0 {
		return false
	}
	return k.Chip(int(t/k.period)) > 0
}

// InjectStats accounts what the attacker injected into one flow — the
// cost side of the active attack, mirroring the defender's overhead
// accounting.
type InjectStats struct {
	// Chaff is the number of attacker-minted packets generated.
	Chaff uint64
	// Payload is the number of payload packets that passed the injector
	// (delay mode only).
	Payload uint64
	// Delayed is the number of payload packets that were delayed.
	Delayed uint64
	// DelaySum is the total injected delay in seconds.
	DelaySum float64
}

// DelaySource imposes the delay-jitter watermark on a payload source:
// every arrival falling in a marked slot of the key is shifted later by
// the amplitude, and departures are kept strictly increasing (a shifted
// packet cannot overtake the packets behind it — the attacker's queue
// preserves order). It implements traffic.Source, so it composes in
// front of any gateway exactly like the unwatermarked payload would.
type DelaySource struct {
	src     traffic.Source
	key     *Key
	amp     float64
	now     float64 // arrival clock of the wrapped source
	lastOut float64 // last emitted (possibly delayed) arrival time
	stats   InjectStats
}

// NewDelaySource wraps src with a delay watermark of the given key and
// amplitude (seconds, positive).
func NewDelaySource(src traffic.Source, key *Key, amplitude float64) (*DelaySource, error) {
	if src == nil {
		return nil, errors.New("active: nil payload source")
	}
	if key == nil {
		return nil, errors.New("active: nil watermark key")
	}
	if !(amplitude > 0) {
		return nil, errors.New("active: delay amplitude must be positive")
	}
	return &DelaySource{src: src, key: key, amp: amplitude}, nil
}

// minGap keeps watermarked arrivals strictly increasing when a marked
// packet's shift would land it on top of an unmarked successor (1 ns,
// far below every noise scale in the system).
const minGap = 1e-9

// Next returns the gap to the next (possibly delayed) arrival.
func (d *DelaySource) Next() float64 {
	d.now += d.src.Next()
	out := d.now
	d.stats.Payload++
	if d.key.Marked(d.now) {
		out += d.amp
		d.stats.Delayed++
		d.stats.DelaySum += d.amp
	}
	if out <= d.lastOut {
		out = d.lastOut + minGap
	}
	gap := out - d.lastOut
	d.lastOut = out
	return gap
}

// Rate returns the payload source's rate (the watermark adds no packets).
func (d *DelaySource) Rate() float64 { return d.src.Rate() }

// Stats returns a copy of the injection counters.
func (d *DelaySource) Stats() InjectStats { return d.stats }

// ChaffSource generates the chaff-probe watermark: a Poisson stream at
// the given rate that runs only during the key's marked slots and is
// silent otherwise — an on/off pattern the attacker transmits as
// ordinary (encrypted) payload packets. It implements traffic.Source;
// superpose it with the real payload to inject.
//
// The process is an inhomogeneous Poisson process simulated exactly: an
// exponential clock advances in "on-time" (the measure of marked slots)
// and each event is mapped back to absolute time through the key's
// cyclic schedule.
type ChaffSource struct {
	key    *Key
	rate   float64 // rate while a marked slot is active
	rng    *xrand.Rand
	onTime float64 // cumulative on-time of the last event
	last   float64 // absolute time of the last event
	stats  InjectStats
}

// NewChaffSource creates a chaff stream at the given in-slot rate
// (packets/second, positive) keyed by key.
func NewChaffSource(key *Key, rate float64, rng *xrand.Rand) (*ChaffSource, error) {
	if key == nil {
		return nil, errors.New("active: nil watermark key")
	}
	if !(rate > 0) {
		return nil, errors.New("active: chaff rate must be positive")
	}
	if key.on == 0 {
		return nil, errors.New("active: key has no marked slots to carry chaff")
	}
	if rng == nil {
		return nil, errors.New("active: nil rng")
	}
	return &ChaffSource{key: key, rate: rate, rng: rng}, nil
}

// Next returns the gap to the next chaff packet, crossing silent
// unmarked slots as needed.
func (c *ChaffSource) Next() float64 {
	c.onTime += c.rng.Exp(1 / c.rate)
	t := c.absTime(c.onTime)
	gap := t - c.last
	c.last = t
	c.stats.Chaff++
	return gap
}

// absTime maps a cumulative on-time offset to absolute time: full key
// cycles first, then a walk over the cycle's marked slots.
func (c *ChaffSource) absTime(on float64) float64 {
	k := c.key
	cycleOn := float64(k.on) * k.period
	cycles := int(on / cycleOn)
	rem := on - float64(cycles)*cycleOn
	t := float64(cycles) * float64(len(k.chips)) * k.period
	for s := 0; s < len(k.chips); s++ {
		if k.chips[s] < 0 {
			continue
		}
		if rem < k.period {
			return t + float64(s)*k.period + rem
		}
		rem -= k.period
	}
	// rem landed exactly on the cycle boundary (measure-zero float edge):
	// carry into the next cycle's first marked slot.
	return t + float64(len(k.chips))*k.period + rem
}

// Rate returns the long-run chaff rate: in-slot rate × duty cycle.
func (c *ChaffSource) Rate() float64 { return c.rate * c.key.OnFraction() }

// Stats returns a copy of the injection counters.
func (c *ChaffSource) Stats() InjectStats { return c.stats }

// Flow is one watermarked flow as the active adversary observes it: the
// exit stream past the countermeasure and the exit tap, the flow's own
// watermark key, the observation start time (0 except for warmed
// continuous sessions), and the injection/overhead probes. Like every
// observation protocol it is a stateful stream: one pass per flow,
// build a fresh flow per run; it is not safe for concurrent use.
type Flow struct {
	// Class is the flow's ground-truth payload-rate class.
	Class int
	// Key is the watermark key the attacker injected into this flow.
	Key *Key
	// Exit is the padded departure stream at the exit tap.
	Exit netem.TimeStream
	// Start is the observation start time: packets at or before Start
	// were consumed as warm-up and the detector must not assume it saw
	// them. Zero for fresh (replica-style) flows.
	Start float64
	// Inject reads the attacker's injection counters; nil for phantom
	// training flows, which carry no watermark.
	Inject func() InjectStats
	// Hops holds one overhead probe per padding hop, entry hop first
	// (empty for unpadded flows).
	Hops []cascade.HopProbe
	// Probe is the flow's telemetry shard (nil when collection is
	// disabled); the goroutine pulling Exit owns it and flushes it when
	// the flow's observation finishes.
	Probe *obs.Shard
}

// FlowBuilder produces flow f's watermarked observation. Implementations
// must derive all randomness from the flow index so flows can be
// simulated in parallel deterministically (core provides one wired to
// the System description).
type FlowBuilder func(flow int) (*Flow, error)

// Engine is a validated active-adversary scenario ready to run: the
// concurrent watermarked flows, the shared chip geometry, the decoy keys
// calibrating the detector, and the builder producing each flow.
type Engine struct {
	flows  int
	hops   int
	mode   Mode
	chips  int
	period float64
	decoys []*Key
	build  FlowBuilder
}

// NewEngine assembles an engine over `flows` watermarked flows crossing
// `hops` padded hops each (0 = unpadded passthrough). Every flow's key
// must share the (chips, period) geometry; decoys are the adversary's
// calibration keys (at least 8, same geometry).
func NewEngine(flows, hops int, mode Mode, chips int, period float64, decoys []*Key, build FlowBuilder) (*Engine, error) {
	if flows < 2 {
		return nil, errors.New("active: need at least two flows")
	}
	if hops < 0 {
		return nil, errors.New("active: negative hop count")
	}
	if mode != ModeDelay && mode != ModeChaff {
		return nil, errors.New("active: unknown watermark mode")
	}
	if chips < 2 || !(period > 0) {
		return nil, errors.New("active: invalid chip geometry")
	}
	if len(decoys) < 8 {
		return nil, errors.New("active: need at least eight decoy keys")
	}
	for _, d := range decoys {
		if d == nil || d.Chips() != chips || d.Period() != period {
			return nil, errors.New("active: decoy keys must share the chip geometry")
		}
	}
	if build == nil {
		return nil, errors.New("active: nil flow builder")
	}
	return &Engine{flows: flows, hops: hops, mode: mode, chips: chips,
		period: period, decoys: decoys, build: build}, nil
}

// Flows returns the number of watermarked flows.
func (e *Engine) Flows() int { return e.flows }

// Hops returns the route length in padded hops.
func (e *Engine) Hops() int { return e.hops }

// Mode returns the watermark mode.
func (e *Engine) Mode() Mode { return e.mode }

// Flow builds flow f's observation.
func (e *Engine) Flow(f int) (*Flow, error) {
	if f < 0 || f >= e.flows {
		return nil, errors.New("active: flow index out of range")
	}
	fl, err := e.build(f)
	if err != nil {
		return nil, err
	}
	if fl.Key == nil || fl.Key.Chips() != e.chips || fl.Key.Period() != e.period {
		return nil, errors.New("active: flow key does not share the engine's chip geometry")
	}
	return fl, nil
}
