// Package xrand provides a small, fast, deterministic random number
// generator used by every stochastic component of the simulator.
//
// All simulation components take an explicit *Rand so that experiments are
// exactly reproducible given a seed, and so that independent components
// (payload source, gateway jitter, each router's cross traffic) can be
// driven by independent streams derived from a single master seed.
//
// The core generator is SplitMix64 (Steele, Lea, Flood 2014): a 64-bit
// counter-based generator with excellent statistical quality for
// simulation workloads, a one-word state, and trivially cheap splitting.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator.
// It is not safe for concurrent use; create one per goroutine via Split.
type Rand struct {
	state uint64
	// cached spare normal variate from the polar method
	spare    float64
	hasSpare bool
}

// golden is the SplitMix64 increment (2^64 / phi, rounded to odd).
const golden = 0x9e3779b97f4a7c15

// State is the serializable state of a Rand: the SplitMix64 counter plus
// the polar method's cached spare normal variate. Capturing it and later
// restoring it into a fresh generator resumes the stream exactly where it
// left off — the primitive the checkpoint/resume layer builds on.
type State struct {
	S        uint64  `json:"s"`
	Spare    float64 `json:"spare,omitempty"`
	HasSpare bool    `json:"has_spare,omitempty"`
}

// State captures r's current state.
func (r *Rand) State() State {
	return State{S: r.state, Spare: r.spare, HasSpare: r.hasSpare}
}

// SetState restores a previously captured state: the next variates drawn
// from r are identical to those the captured generator would have drawn.
func (r *Rand) SetState(st State) {
	r.state = st.S
	r.spare = st.Spare
	r.hasSpare = st.HasSpare
}

// New returns a generator seeded with seed. Distinct seeds give
// independent-looking streams.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives a new, statistically independent generator from r.
// The derived stream depends on r's current state, so calling Split
// repeatedly yields distinct generators.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0x6a09e667f3bcc909)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += golden
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform variate in (0, 1), never exactly zero,
// suitable for logarithm-based transforms.
func (r *Rand) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 computes the 128-bit product of a and b.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// Norm returns a standard normal variate (mean 0, variance 1) using the
// Marsaglia polar method with spare caching.
func (r *Rand) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Normal returns a normal variate with the given mean and standard
// deviation. It panics if sigma is negative.
func (r *Rand) Normal(mean, sigma float64) float64 {
	if sigma < 0 {
		panic("xrand: Normal with negative sigma")
	}
	return mean + sigma*r.Norm()
}

// TruncNormal returns a normal variate with the given mean and standard
// deviation, truncated (by rejection) to be >= lo. The truncation point
// must not be more than about 6 sigma above the mean or sampling becomes
// pathologically slow; for the simulator's use (interval floors far in the
// left tail) rejection is essentially free.
func (r *Rand) TruncNormal(mean, sigma, lo float64) float64 {
	if sigma == 0 {
		if mean < lo {
			return lo
		}
		return mean
	}
	for i := 0; i < 1024; i++ {
		x := r.Normal(mean, sigma)
		if x >= lo {
			return x
		}
	}
	// Pathological truncation: fall back to the floor rather than spin.
	return lo
}

// Exp returns an exponential variate with the given mean.
// It panics if mean is negative; a zero mean yields zero.
func (r *Rand) Exp(mean float64) float64 {
	if mean < 0 {
		panic("xrand: Exp with negative mean")
	}
	if mean == 0 {
		return 0
	}
	return -mean * math.Log(r.Float64Open())
}

// Poisson returns a Poisson variate with the given rate parameter lambda.
// For small lambda it uses Knuth multiplication; for large lambda the
// PTRS transformed-rejection method would be ideal, but the simulator only
// draws Poisson counts with lambda up to a few hundred, where the simple
// normal-approximation fallback with continuity correction is adequate and
// branch-free. Counts are never negative.
func (r *Rand) Poisson(lambda float64) int {
	switch {
	case lambda < 0:
		panic("xrand: Poisson with negative lambda")
	case lambda == 0:
		return 0
	case lambda < 30:
		// Knuth's product-of-uniforms method.
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64Open()
			if p <= l {
				return k
			}
			k++
		}
	default:
		// Normal approximation with continuity correction; error is
		// negligible for lambda >= 30 at the precision the simulator needs.
		x := math.Floor(lambda + math.Sqrt(lambda)*r.Norm() + 0.5)
		if x < 0 {
			return 0
		}
		return int(x)
	}
}

// Geometric returns a variate K >= 0 with P(K = k) = (1-p) * p^k,
// i.e. the number of failures before the first success when the success
// probability is 1-p. This is the ladder-count distribution used by the
// Pollaczek-Khinchine waiting-time sampler. It panics unless 0 <= p < 1.
func (r *Rand) Geometric(p float64) int {
	if p < 0 || p >= 1 {
		panic("xrand: Geometric requires 0 <= p < 1")
	}
	if p == 0 {
		return 0
	}
	// Inversion: K = floor(log(U) / log(p)). The ladder sampler calls this
	// once per packet per hop, and at the utilizations studied K = 0 — that
	// is U > p — dominates, so resolve that case from the uniform alone
	// before paying for two logarithms.
	u := r.Float64Open()
	if u > p {
		return 0
	}
	k := math.Floor(math.Log(u) / math.Log(p))
	if k < 0 {
		return 0
	}
	return int(k)
}

// GeometricLog is Geometric with the logarithm of p precomputed by the
// caller: logp must equal math.Log(p). Batched samplers at a constant
// utilization draw one geometric per packet, and caching log(p) removes
// one of the two logarithms from the slow branch without changing a
// single draw — given the same p and uniform stream, GeometricLog and
// Geometric return bit-identical sequences.
func (r *Rand) GeometricLog(p, logp float64) int {
	if p < 0 || p >= 1 {
		panic("xrand: GeometricLog requires 0 <= p < 1")
	}
	if p == 0 {
		return 0
	}
	u := r.Float64Open()
	if u > p {
		return 0
	}
	k := math.Floor(math.Log(u) / logp)
	if k < 0 {
		return 0
	}
	return int(k)
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
