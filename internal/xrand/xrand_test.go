package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first outputs")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", u)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		u := r.Float64()
		sum += u
		sumsq += u * u
	}
	mean := sum / n
	varr := sumsq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want 0.5", mean)
	}
	if math.Abs(varr-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want %v", varr, 1.0/12)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	const n = 400000
	var sum, sumsq, sum3 float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
		sum3 += x * x * x
	}
	mean := sum / n
	varr := sumsq/n - mean*mean
	skew := sum3 / n
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want 0", mean)
	}
	if math.Abs(varr-1) > 0.02 {
		t.Errorf("normal variance = %v, want 1", varr)
	}
	if math.Abs(skew) > 0.03 {
		t.Errorf("normal third moment = %v, want 0", skew)
	}
}

func TestNormalScaling(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Normal(10e-3, 3e-6)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-10e-3) > 1e-7 {
		t.Errorf("mean = %v, want 10e-3", mean)
	}
	if math.Abs(sd-3e-6) > 1e-7 {
		t.Errorf("sd = %v, want 3e-6", sd)
	}
}

func TestNormalNegativeSigmaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Normal(0, -1)
}

func TestExpMoments(t *testing.T) {
	r := New(13)
	const n, mean = 200000, 4.4e-6
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Exp(mean)
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
		sum += x
		sumsq += x * x
	}
	m := sum / n
	v := sumsq/n - m*m
	if math.Abs(m-mean)/mean > 0.02 {
		t.Errorf("exp mean = %v, want %v", m, mean)
	}
	if math.Abs(v-mean*mean)/(mean*mean) > 0.05 {
		t.Errorf("exp variance = %v, want %v", v, mean*mean)
	}
}

func TestExpZeroMean(t *testing.T) {
	if got := New(1).Exp(0); got != 0 {
		t.Fatalf("Exp(0) = %v, want 0", got)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0.1, 0.4, 3, 25, 80} {
		r := New(17)
		const n = 100000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			k := r.Poisson(lambda)
			if k < 0 {
				t.Fatalf("negative Poisson count")
			}
			x := float64(k)
			sum += x
			sumsq += x * x
		}
		m := sum / n
		v := sumsq/n - m*m
		tol := 4 * math.Sqrt(lambda/n) // ~4 standard errors
		if math.Abs(m-lambda) > tol+0.02 {
			t.Errorf("lambda=%v: mean = %v", lambda, m)
		}
		if math.Abs(v-lambda)/lambda > 0.1 {
			t.Errorf("lambda=%v: variance = %v", lambda, v)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
}

func TestGeometricMoments(t *testing.T) {
	for _, p := range []float64{0, 0.1, 0.4, 0.9} {
		r := New(23)
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Geometric(p))
		}
		m := sum / n
		want := p / (1 - p)
		if math.Abs(m-want) > 0.05*(1+want) {
			t.Errorf("p=%v: mean = %v, want %v", p, m, want)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	for _, p := range []float64{-0.1, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestTruncNormalRespectsFloor(t *testing.T) {
	r := New(29)
	for i := 0; i < 100000; i++ {
		x := r.TruncNormal(10e-3, 5e-3, 1e-3)
		if x < 1e-3 {
			t.Fatalf("truncated normal below floor: %v", x)
		}
	}
}

func TestTruncNormalDegenerate(t *testing.T) {
	if got := New(1).TruncNormal(5, 0, 7); got != 7 {
		t.Fatalf("TruncNormal(5,0,7) = %v, want clamped 7", got)
	}
	if got := New(1).TruncNormal(9, 0, 7); got != 9 {
		t.Fatalf("TruncNormal(9,0,7) = %v, want 9", got)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(31)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		k := r.Intn(7)
		if k < 0 || k >= 7 {
			t.Fatalf("Intn out of range: %d", k)
		}
		counts[k]++
	}
	for k, c := range counts {
		if math.Abs(float64(c)-n/7) > 5*math.Sqrt(n/7.0) {
			t.Errorf("bucket %d count %d deviates from uniform", k, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(41)
	const n = 100000
	hit := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hit++
		}
	}
	rate := float64(hit) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", rate)
	}
}

// Property: Float64 always in [0,1) and Exp/Poisson non-negative,
// for arbitrary seeds.
func TestQuickProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			if u := r.Float64(); u < 0 || u >= 1 {
				return false
			}
			if r.Exp(1e-6) < 0 {
				return false
			}
			if r.Poisson(0.5) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(1)
	}
	_ = sink
}

func BenchmarkPoissonSmall(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Poisson(0.4)
	}
	_ = sink
}

func TestGeometricLogMatchesGeometric(t *testing.T) {
	for _, p := range []float64{1e-6, 0.01, 0.1, 0.5, 0.9, 0.999} {
		logp := math.Log(p)
		a, b := New(42), New(42)
		for i := 0; i < 10000; i++ {
			ka, kb := a.Geometric(p), b.GeometricLog(p, logp)
			if ka != kb {
				t.Fatalf("p=%g draw %d: Geometric=%d GeometricLog=%d", p, i, ka, kb)
			}
		}
	}
}

func BenchmarkGeometricLog(b *testing.B) {
	r := New(1)
	logp := math.Log(0.4)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.GeometricLog(0.4, logp)
	}
	_ = sink
}
