// Command linkpadsim regenerates the paper's evaluation tables and
// figures from the simulated link-padding system.
//
// Usage:
//
//	linkpadsim -list
//	linkpadsim -exp fig4b [-scale 1.0] [-seed 1] [-format text|csv] [-workers N]
//	linkpadsim -exp all -o results/
//	linkpadsim -exp all -progress -report report.json
//	linkpadsim -exp all -bench-json BENCH.json
//	linkpadsim -bench-compare BENCH.json
//	linkpadsim -bench-gate BENCH.json [-bench-gate-pct 25]
//	linkpadsim -exp ext-disclosure -checkpoint cp.json [-checkpoint-kill N]
//	linkpadsim -exp scale-disclosure -scale 1 -timeout 10m -max-rss-mb 2048
//	linkpadsim -exp fig8b -cpuprofile cpu.out -memprofile mem.out
//	linkpadsim -exp fig8b -metrics-addr localhost:6060
//
// Each experiment prints the series the corresponding paper figure plots;
// see DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured comparisons.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"linkpad/internal/experiment"
	"linkpad/internal/obs"
)

// exitKilled is the distinct exit code for a -checkpoint-kill simulated
// crash: the run stopped on purpose with a valid checkpoint on disk, so
// CI can tell "resume me" apart from a real failure's exit 1.
const exitKilled = 3

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, experiment.ErrKilled) {
			fmt.Fprintln(os.Stderr, "linkpadsim:", err)
			os.Exit(exitKilled)
		}
		fmt.Fprintln(os.Stderr, "linkpadsim:", err)
		os.Exit(1)
	}
}

// run is the whole CLI behind a plain function boundary: flags parse
// from args into a private FlagSet and all output goes to the given
// writers, so tests drive every flag-validation path in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("linkpadsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expID        = fs.String("exp", "", "experiment id (see -list), or 'all'")
		list         = fs.Bool("list", false, "list available experiments")
		scale        = fs.Float64("scale", 1.0, "Monte Carlo effort multiplier")
		seed         = fs.Uint64("seed", 1, "master random seed")
		workers      = fs.Int("workers", 0, "parallelism (0 = all CPUs); results are identical at any width")
		format       = fs.String("format", "text", "output format: text or csv")
		outDir       = fs.String("o", "", "write per-experiment files into this directory instead of stdout")
		report       = fs.String("report", "", "write a structured JSON run report (per-layer counters, packets/sec) to this file")
		progress     = fs.Bool("progress", false, "emit a live progress line with a cells-completed ETA on stderr")
		metricsAddr  = fs.String("metrics-addr", "", "serve expvar counters and net/http/pprof on this address (e.g. localhost:6060) for the run's duration")
		benchJSON    = fs.String("bench-json", "", "time the experiments and append a run record to this JSON trajectory file instead of printing tables")
		benchCompare = fs.String("bench-compare", "", "print per-experiment wall-clock deltas between the last two comparable records (same scale/seed/workers) of this bench trajectory file")
		benchGate    = fs.String("bench-gate", "", "like -bench-compare, but exit non-zero if any experiment slowed down past -bench-gate-pct")
		benchGatePct = fs.Float64("bench-gate-pct", 25, "per-experiment slowdown threshold for -bench-gate, in percent")
		checkpoint   = fs.String("checkpoint", "", "persist per-cell progress of a checkpointable experiment to this file and resume from it if present")
		cpKill       = fs.Int("checkpoint-kill", 0, "abort with a simulated crash after this many cells finish (requires -checkpoint; exit code 3)")
		timeout      = fs.Duration("timeout", 0, "abort the whole run after this wall-clock duration (0 = no limit)")
		maxRSSMB     = fs.Int("max-rss-mb", 0, "fail the run if peak resident memory (VmHWM) exceeds this many MiB (0 = no ceiling; skipped where /proc is unavailable)")
		cpuProfile   = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile   = fs.String("memprofile", "", "write a pprof heap profile at the end of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *timeout > 0 {
		// A hard wall-clock guard for CI smoke steps: a wedged experiment
		// must fail the step, not hang the job until the runner's global
		// timeout. The timer goroutine exits the process directly — there
		// is nothing to clean up that the OS won't.
		go func() {
			time.Sleep(*timeout)
			fmt.Fprintf(os.Stderr, "linkpadsim: timeout: run exceeded %v\n", *timeout)
			os.Exit(2)
		}()
	}
	if *benchCompare != "" {
		return runBenchCompare(stdout, *benchCompare)
	}
	if *benchGate != "" {
		return runBenchGate(stdout, *benchGate, *benchGatePct)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		// Written on the way out so the profile covers the whole run's
		// retained heap, not the startup state.
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "linkpadsim: memprofile:", err)
			}
			f.Close()
		}()
	}
	if *list {
		for _, id := range experiment.Names() {
			fmt.Fprintln(stdout, id)
		}
		return nil
	}
	if *expID == "" && *benchJSON != "" {
		*expID = "all"
	}
	if *expID == "" {
		return fmt.Errorf("missing -exp (try -list)")
	}
	if *format != "text" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = experiment.Names()
	}
	opts := experiment.Options{Scale: *scale, Seed: *seed, Workers: *workers}

	if *cpKill > 0 && *checkpoint == "" {
		return fmt.Errorf("-checkpoint-kill requires -checkpoint")
	}
	if *checkpoint != "" {
		if *benchJSON != "" {
			return fmt.Errorf("-checkpoint and -bench-json are mutually exclusive")
		}
		if len(ids) != 1 {
			return fmt.Errorf("-checkpoint runs a single experiment, not -exp all")
		}
		if !experiment.Checkpointable(ids[0]) {
			return fmt.Errorf("%s does not support checkpointing (cell experiments only)", ids[0])
		}
	}
	if *report != "" && *benchJSON != "" {
		return fmt.Errorf("-report and -bench-json are mutually exclusive (a bench record already carries the report's throughput fields)")
	}
	if *maxRSSMB < 0 {
		return fmt.Errorf("-max-rss-mb must be non-negative, got %d", *maxRSSMB)
	}

	// Telemetry is off unless a consumer asked for it; the counters are
	// deterministically invisible either way (golden tables byte-identical
	// on or off, enforced by tests), so flipping this cannot change any
	// table.
	if *report != "" || *metricsAddr != "" || *benchJSON != "" {
		obs.SetEnabled(true)
	}
	if *metricsAddr != "" {
		stop, err := serveMetrics(*metricsAddr, stderr)
		if err != nil {
			return err
		}
		defer stop()
	}

	prog := newProgress(stderr, *progress)
	prog.start(len(ids))
	defer prog.stop()

	if *benchJSON != "" {
		if err := runBenchJSON(ids, opts, *benchJSON); err != nil {
			return err
		}
		return checkPeakRSS(stderr, *maxRSSMB)
	}

	rep := newRunReport(opts)
	for _, id := range ids {
		start := time.Now()
		before := obs.Snapshot()
		var (
			tbl *experiment.Table
			err error
		)
		if *checkpoint != "" {
			tbl, err = experiment.RunCheckpointed(id, opts, *checkpoint, *cpKill)
		} else {
			tbl, err = experiment.Run(id, opts)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		elapsed := time.Since(start)
		rep.add(id, elapsed, len(tbl.Rows), before, obs.Snapshot())
		out := io.Writer(stdout)
		var file *os.File
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			ext := map[string]string{"text": "txt", "csv": "csv"}[*format]
			file, err = os.Create(filepath.Join(*outDir, id+"."+ext))
			if err != nil {
				return err
			}
			out = file
		}
		var werr error
		if *format == "csv" {
			werr = tbl.WriteCSV(out)
		} else {
			werr = tbl.WriteText(out)
		}
		if file != nil {
			if cerr := file.Close(); werr == nil {
				werr = cerr
			}
		} else {
			fmt.Fprintln(stdout)
		}
		if werr != nil {
			return werr
		}
		prog.experimentDone(id, elapsed)
	}
	if *report != "" {
		if err := rep.write(*report); err != nil {
			return fmt.Errorf("report: %w", err)
		}
		fmt.Fprintf(stderr, "run report written to %s\n", *report)
	}
	return checkPeakRSS(stderr, *maxRSSMB)
}
