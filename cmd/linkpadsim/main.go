// Command linkpadsim regenerates the paper's evaluation tables and
// figures from the simulated link-padding system.
//
// Usage:
//
//	linkpadsim -list
//	linkpadsim -exp fig4b [-scale 1.0] [-seed 1] [-format text|csv] [-workers N]
//	linkpadsim -exp all -o results/
//	linkpadsim -exp all -bench-json BENCH.json
//	linkpadsim -bench-compare BENCH.json
//
// Each experiment prints the series the corresponding paper figure plots;
// see DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured comparisons.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"linkpad/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "linkpadsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expID        = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list         = flag.Bool("list", false, "list available experiments")
		scale        = flag.Float64("scale", 1.0, "Monte Carlo effort multiplier")
		seed         = flag.Uint64("seed", 1, "master random seed")
		workers      = flag.Int("workers", 0, "parallelism (0 = all CPUs); results are identical at any width")
		format       = flag.String("format", "text", "output format: text or csv")
		outDir       = flag.String("o", "", "write per-experiment files into this directory instead of stdout")
		benchJSON    = flag.String("bench-json", "", "time the experiments and append a run record to this JSON trajectory file instead of printing tables")
		benchCompare = flag.String("bench-compare", "", "print per-experiment wall-clock deltas between the last two comparable records (same scale/seed/workers) of this bench trajectory file")
	)
	flag.Parse()

	if *benchCompare != "" {
		return runBenchCompare(os.Stdout, *benchCompare)
	}
	if *list {
		for _, id := range experiment.Names() {
			fmt.Println(id)
		}
		return nil
	}
	if *expID == "" && *benchJSON != "" {
		*expID = "all"
	}
	if *expID == "" {
		return fmt.Errorf("missing -exp (try -list)")
	}
	if *format != "text" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = experiment.Names()
	}
	opts := experiment.Options{Scale: *scale, Seed: *seed, Workers: *workers}

	if *benchJSON != "" {
		return runBenchJSON(ids, opts, *benchJSON)
	}

	for _, id := range ids {
		start := time.Now()
		tbl, err := experiment.Run(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		out := os.Stdout
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			ext := map[string]string{"text": "txt", "csv": "csv"}[*format]
			f, err := os.Create(filepath.Join(*outDir, id+"."+ext))
			if err != nil {
				return err
			}
			out = f
		}
		var werr error
		if *format == "csv" {
			werr = tbl.WriteCSV(out)
		} else {
			werr = tbl.WriteText(out)
		}
		if out != os.Stdout {
			if cerr := out.Close(); werr == nil {
				werr = cerr
			}
			fmt.Fprintf(os.Stderr, "%s: done in %v\n", id, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Println()
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}
