package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// peakRSSMB reports the process's peak resident set size (VmHWM) in
// MiB. The second return is false where the kernel does not expose
// /proc/self/status (non-Linux), so callers can skip the ceiling check
// rather than fail a run the platform cannot measure.
func peakRSSMB() (float64, bool) {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// "VmHWM:  123456 kB" — the high-water mark of the resident set.
		if len(fields) >= 2 && fields[0] == "VmHWM:" {
			kb, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return 0, false
			}
			return kb / 1024, true
		}
	}
	return 0, false
}

// checkPeakRSS enforces the -max-rss-mb ceiling after a run finished:
// the scale-smoke CI job uses it to pin the engine's memory model (a
// million-user run must stay within the compact-frontier budget, not
// drift back to N fully built users). limitMB <= 0 disables the check;
// an unmeasurable platform passes.
func checkPeakRSS(w io.Writer, limitMB int) error {
	if limitMB <= 0 {
		return nil
	}
	mb, ok := peakRSSMB()
	if !ok {
		return nil
	}
	if mb > float64(limitMB) {
		return fmt.Errorf("peak RSS %.0f MiB exceeds -max-rss-mb %d", mb, limitMB)
	}
	fmt.Fprintf(w, "peak RSS %.0f MiB within -max-rss-mb %d\n", mb, limitMB)
	return nil
}
