package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"linkpad/internal/experiment"
	"linkpad/internal/obs"
)

// benchRecord is one -bench-json run: wall-clock per experiment at the
// given options, appended to the trajectory file so successive commits
// (or machines) can be compared. GitCommit and Scale attribute each
// record to a code revision and Monte Carlo effort, making the
// trajectory comparable across commits.
type benchRecord struct {
	Timestamp    string       `json:"timestamp"`
	GitCommit    string       `json:"git_commit"`
	GoVersion    string       `json:"go_version"`
	GOMAXPROCS   int          `json:"gomaxprocs"`
	Scale        float64      `json:"scale"`
	Seed         uint64       `json:"seed"`
	Workers      int          `json:"workers"`
	Experiments  []benchPoint `json:"experiments"`
	TotalSeconds float64      `json:"total_seconds"`
}

// gitCommit identifies the code revision being benchmarked. The
// enclosing git checkout is preferred over the binary's build info so
// `go run` and a built binary stamp the same tree identically: git can
// exclude BENCH.json from the dirty check (the bench run itself appends
// to it, and a trajectory file touched by the previous run must not mark
// an otherwise clean tree dirty), where vcs.modified cannot. The
// checkout is used only if it actually is this module, so a run from
// inside an unrelated repository is not attributed to that repository's
// commits. Build info is the fallback for binaries run outside the
// checkout; "unknown" when neither source is available.
func gitCommit() string {
	if rev := gitTreeCommit(); rev != "" {
		return rev
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					modified = "+dirty"
				}
			}
		}
		if rev != "" {
			return rev + modified
		}
	}
	return "unknown"
}

// gitTreeCommit resolves the enclosing checkout's HEAD (+dirty), or ""
// when the cwd is not inside this module's repository.
func gitTreeCommit() string {
	out, err := exec.Command("git", "rev-parse", "--show-toplevel").Output()
	if err != nil {
		return ""
	}
	top := strings.TrimSpace(string(out))
	mod, err := os.ReadFile(top + "/go.mod")
	if err != nil || !strings.HasPrefix(string(mod), "module linkpad\n") {
		return ""
	}
	out, err = exec.Command("git", "-C", top, "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	rev := strings.TrimSpace(string(out))
	// Whole-tree status (git -C toplevel) so a subdirectory cwd neither
	// misses dirt elsewhere nor fails to exclude BENCH.json. A failed
	// status must not stamp a possibly-dirty tree as clean — fall back
	// to the build-info path instead.
	status, err := exec.Command("git", "-C", top, "status", "--porcelain", "--", ".", ":!BENCH.json").Output()
	if err != nil {
		return ""
	}
	if len(status) > 0 {
		rev += "+dirty"
	}
	return rev
}

// benchPoint times one experiment. Packets is the simulated packet
// volume the experiment pushed through the padded links (gateway
// payload + dummy emissions plus timed-mix packets, from the obs
// counter delta around the run) — a deterministic function of
// (experiment, scale, seed), so packets/sec trends are comparable
// across records at the same options even as the code changes.
type benchPoint struct {
	ID            string  `json:"id"`
	Seconds       float64 `json:"seconds"`
	Rows          int     `json:"rows"`
	Packets       uint64  `json:"packets"`
	PacketsPerSec float64 `json:"packets_per_sec"`
}

// runBenchJSON executes the selected experiments, timing each, and
// appends the run to the JSON trajectory at path (created if absent).
func runBenchJSON(ids []string, opts experiment.Options, path string) error {
	rec := benchRecord{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GitCommit:  gitCommit(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      opts.Scale,
		Seed:       opts.Seed,
		Workers:    opts.Workers,
	}
	total := time.Duration(0)
	for _, id := range ids {
		start := time.Now()
		before := obs.Snapshot()
		tbl, err := experiment.Run(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		elapsed := time.Since(start)
		total += elapsed
		var delta [obs.NumCounters]uint64
		after := obs.Snapshot()
		for c := range delta {
			delta[c] = after[c] - before[c]
		}
		packets := obs.Packets(delta)
		rec.Experiments = append(rec.Experiments, benchPoint{
			ID:            id,
			Seconds:       elapsed.Seconds(),
			Rows:          len(tbl.Rows),
			Packets:       packets,
			PacketsPerSec: perSecond(packets, elapsed),
		})
		fmt.Fprintf(os.Stderr, "%s: %v\n", id, elapsed.Round(time.Millisecond))
	}
	rec.TotalSeconds = total.Seconds()

	var trajectory []benchRecord
	if data, err := os.ReadFile(path); err == nil {
		// A corrupt or foreign file is preserved rather than overwritten.
		if err := json.Unmarshal(data, &trajectory); err != nil {
			return fmt.Errorf("bench-json: %s exists but is not a bench trajectory: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	trajectory = append(trajectory, rec)
	out, err := json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "total %v; trajectory appended to %s (%d runs)\n",
		total.Round(time.Millisecond), path, len(trajectory))
	return nil
}
