package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"linkpad/internal/experiment"
)

// benchRecord is one -bench-json run: wall-clock per experiment at the
// given options, appended to the trajectory file so successive commits
// (or machines) can be compared.
type benchRecord struct {
	Timestamp    string       `json:"timestamp"`
	GoVersion    string       `json:"go_version"`
	GOMAXPROCS   int          `json:"gomaxprocs"`
	Scale        float64      `json:"scale"`
	Seed         uint64       `json:"seed"`
	Workers      int          `json:"workers"`
	Experiments  []benchPoint `json:"experiments"`
	TotalSeconds float64      `json:"total_seconds"`
}

// benchPoint times one experiment.
type benchPoint struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
	Rows    int     `json:"rows"`
}

// runBenchJSON executes the selected experiments, timing each, and
// appends the run to the JSON trajectory at path (created if absent).
func runBenchJSON(ids []string, opts experiment.Options, path string) error {
	rec := benchRecord{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      opts.Scale,
		Seed:       opts.Seed,
		Workers:    opts.Workers,
	}
	total := time.Duration(0)
	for _, id := range ids {
		start := time.Now()
		tbl, err := experiment.Run(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		elapsed := time.Since(start)
		total += elapsed
		rec.Experiments = append(rec.Experiments, benchPoint{
			ID:      id,
			Seconds: elapsed.Seconds(),
			Rows:    len(tbl.Rows),
		})
		fmt.Fprintf(os.Stderr, "%s: %v\n", id, elapsed.Round(time.Millisecond))
	}
	rec.TotalSeconds = total.Seconds()

	var trajectory []benchRecord
	if data, err := os.ReadFile(path); err == nil {
		// A corrupt or foreign file is preserved rather than overwritten.
		if err := json.Unmarshal(data, &trajectory); err != nil {
			return fmt.Errorf("bench-json: %s exists but is not a bench trajectory: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	trajectory = append(trajectory, rec)
	out, err := json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "total %v; trajectory appended to %s (%d runs)\n",
		total.Round(time.Millisecond), path, len(trajectory))
	return nil
}
