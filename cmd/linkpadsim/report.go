package main

import (
	"encoding/json"
	"os"
	"runtime"
	"time"

	"linkpad/internal/experiment"
	"linkpad/internal/obs"
)

// A RunReport is the -report output: one structured JSON document per
// CLI invocation attributing every telemetry counter to the experiment
// that produced it. The counters come from per-experiment snapshot
// deltas of the obs collector, so an "all" run decomposes cleanly even
// though the collector itself is process-global. Counter values are
// deterministic functions of (experiment, scale, seed) — identical at
// any -workers width — while seconds and packets/sec are wall-clock
// measurements and vary run to run.
type RunReport struct {
	Timestamp   string             `json:"timestamp"`
	GitCommit   string             `json:"git_commit"`
	GoVersion   string             `json:"go_version"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Scale       float64            `json:"scale"`
	Seed        uint64             `json:"seed"`
	Workers     int                `json:"workers"`
	Experiments []ExperimentReport `json:"experiments"`
	Totals      ReportTotals       `json:"totals"`
}

// ExperimentReport is one experiment's slice of the run.
type ExperimentReport struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
	Rows    int     `json:"rows"`
	// Packets is the simulated packet volume this experiment pushed
	// through the padded links: gateway payload + dummy emissions plus
	// timed-mix packets (obs.Packets over the counter delta).
	Packets       uint64            `json:"packets"`
	PacketsPerSec float64           `json:"packets_per_sec"`
	Counters      map[string]uint64 `json:"counters"`
}

// ReportTotals aggregates the whole invocation.
type ReportTotals struct {
	Seconds       float64           `json:"seconds"`
	Packets       uint64            `json:"packets"`
	PacketsPerSec float64           `json:"packets_per_sec"`
	Counters      map[string]uint64 `json:"counters"`
}

// runReport accumulates per-experiment counter deltas during the run
// loop and serialises them at the end.
type runReport struct {
	rep   RunReport
	total time.Duration
}

func newRunReport(opts experiment.Options) *runReport {
	return &runReport{rep: RunReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GitCommit:  gitCommit(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      opts.Scale,
		Seed:       opts.Seed,
		Workers:    opts.Workers,
	}}
}

// add records one finished experiment from the collector snapshots
// taken just before and just after its run.
func (r *runReport) add(id string, elapsed time.Duration, rows int, before, after [obs.NumCounters]uint64) {
	var delta [obs.NumCounters]uint64
	counters := make(map[string]uint64, int(obs.NumCounters))
	for c := obs.Counter(0); c < obs.NumCounters; c++ {
		delta[c] = after[c] - before[c]
		counters[c.Name()] = delta[c]
	}
	packets := obs.Packets(delta)
	r.total += elapsed
	r.rep.Experiments = append(r.rep.Experiments, ExperimentReport{
		ID:            id,
		Seconds:       elapsed.Seconds(),
		Rows:          rows,
		Packets:       packets,
		PacketsPerSec: perSecond(packets, elapsed),
		Counters:      counters,
	})
}

// write finalises the totals and writes the report to path.
func (r *runReport) write(path string) error {
	totals := ReportTotals{
		Seconds:  r.total.Seconds(),
		Counters: make(map[string]uint64, int(obs.NumCounters)),
	}
	for _, e := range r.rep.Experiments {
		totals.Packets += e.Packets
		for name, n := range e.Counters {
			totals.Counters[name] += n
		}
	}
	totals.PacketsPerSec = perSecond(totals.Packets, r.total)
	r.rep.Totals = totals
	data, err := json.MarshalIndent(&r.rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// perSecond guards the throughput division against a sub-resolution
// elapsed time (trivial experiments at tiny -scale can finish in 0ns on
// coarse clocks).
func perSecond(packets uint64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(packets) / elapsed.Seconds()
}
