package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"linkpad/internal/obs"
)

// tryRun invokes the CLI in-process with quiet writers and returns the
// error plus captured stderr.
func tryRun(t *testing.T, args ...string) (error, string) {
	t.Helper()
	var out, errw bytes.Buffer
	err := run(args, &out, &errw)
	return err, errw.String()
}

// Every flag-validation rejection path must fire before any experiment
// runs, with an error naming the conflict.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing exp", nil, "missing -exp"},
		{"unknown format", []string{"-exp", "fig4b", "-format", "yaml"}, `unknown format "yaml"`},
		{"kill without checkpoint", []string{"-exp", "ext-disclosure", "-checkpoint-kill", "2"}, "-checkpoint-kill requires -checkpoint"},
		{"checkpoint and bench-json", []string{"-exp", "ext-disclosure", "-checkpoint", "cp.json", "-bench-json", "b.json"}, "mutually exclusive"},
		{"checkpoint all", []string{"-exp", "all", "-checkpoint", "cp.json"}, "single experiment"},
		{"non-checkpointable", []string{"-exp", "fig4b", "-checkpoint", "cp.json"}, "does not support checkpointing"},
		{"report and bench-json", []string{"-exp", "fig4b", "-report", "r.json", "-bench-json", "b.json"}, "mutually exclusive"},
		{"negative max-rss-mb", []string{"-exp", "fig4b", "-max-rss-mb", "-1"}, "must be non-negative"},
		{"unknown flag", []string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err, _ := tryRun(t, tc.args...)
			if err == nil {
				t.Fatalf("args %v accepted; want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("args %v: error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// The output-mode flag matrix, positive half: combinations the CLI must
// accept. -report composes with -checkpoint (a resumable run still wants
// its flight-recorder totals; only -bench-json claims the same fields),
// and -max-rss-mb composes with everything as a pure post-run assertion.
func TestRunFlagMatrixPositive(t *testing.T) {
	defer func() {
		obs.SetEnabled(false)
		obs.Reset()
	}()
	obs.Reset()
	dir := t.TempDir()
	report := filepath.Join(dir, "report.json")
	cp := filepath.Join(dir, "cp.json")
	// scale-disclosure at the floor population: the cheapest
	// checkpointable experiment, so the matrix test stays a smoke test.
	err, _ := tryRun(t, "-exp", "scale-disclosure", "-scale", "0.001", "-seed", "3",
		"-checkpoint", cp, "-report", report, "-max-rss-mb", "4096")
	if err != nil {
		t.Fatalf("-report with -checkpoint rejected: %v", err)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep RunReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not decode: %v", err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "scale-disclosure" {
		t.Fatalf("report experiments = %+v", rep.Experiments)
	}
	if _, err := os.Stat(cp); err != nil {
		t.Errorf("checkpoint file not persisted alongside -report: %v", err)
	}
}

// -max-rss-mb is a post-run ceiling: a generous ceiling passes and
// reports the measured peak; an absurdly low one fails the run. Skipped
// where the platform does not expose VmHWM.
func TestRunMaxRSSCeiling(t *testing.T) {
	if _, ok := peakRSSMB(); !ok {
		t.Skip("no VmHWM on this platform")
	}
	err, stderr := tryRun(t, "-exp", "scale-disclosure", "-scale", "0.001", "-seed", "3",
		"-max-rss-mb", "8192")
	if err != nil {
		t.Fatalf("generous RSS ceiling failed: %v", err)
	}
	if !strings.Contains(stderr, "peak RSS") {
		t.Errorf("no peak-RSS line on stderr:\n%s", stderr)
	}
	err, _ = tryRun(t, "-exp", "scale-disclosure", "-scale", "0.001", "-seed", "3",
		"-max-rss-mb", "1")
	if err == nil || !strings.Contains(err.Error(), "exceeds -max-rss-mb") {
		t.Errorf("1 MiB ceiling not enforced: err=%v", err)
	}
}

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig4b") {
		t.Errorf("-list output lacks fig4b:\n%s", out.String())
	}
}

// An end-to-end -report run: the report decodes, its counters are
// non-zero, its packet totals agree with the counter arithmetic, and
// the per-experiment timing line lands on stderr even in stdout mode
// (it used to print only with -o).
func TestRunReportSmoke(t *testing.T) {
	defer func() {
		obs.SetEnabled(false)
		obs.Reset()
	}()
	obs.Reset()
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errw bytes.Buffer
	err := run([]string{"-exp", "fig4b", "-scale", "0.05", "-seed", "3", "-progress", "-report", path}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "fig4b: done in ") {
		t.Errorf("stderr lacks the per-experiment timing line:\n%s", errw.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep RunReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not decode: %v", err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "fig4b" {
		t.Fatalf("report experiments = %+v", rep.Experiments)
	}
	e := rep.Experiments[0]
	if e.Packets == 0 || e.Counters["gateway_payload"] == 0 || e.Counters["adv_window"] == 0 {
		t.Errorf("report counters degenerate: packets=%d counters=%v", e.Packets, e.Counters)
	}
	if want := e.Counters["gateway_payload"] + e.Counters["gateway_dummy"] + e.Counters["mix_packet"]; e.Packets != want {
		t.Errorf("packets = %d, want counter sum %d", e.Packets, want)
	}
	if rep.Totals.Packets != e.Packets {
		t.Errorf("totals.packets = %d, want %d", rep.Totals.Packets, e.Packets)
	}
}
