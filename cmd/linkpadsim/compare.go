package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// runBenchCompare prints per-experiment wall-clock deltas between the
// last record of the trajectory at path and the most recent earlier
// record with the same scale, seed and effective parallelism (equal
// workers, and equal GOMAXPROCS when workers is 0 = all CPUs) — the pair
// that is actually comparable — so a perf regression shows up as a
// signed percentage instead of a manual JSON diff.
func runBenchCompare(w io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench-compare: %w", err)
	}
	var trajectory []benchRecord
	if err := json.Unmarshal(data, &trajectory); err != nil {
		return fmt.Errorf("bench-compare: %s is not a bench trajectory: %w", path, err)
	}
	if len(trajectory) < 2 {
		return fmt.Errorf("bench-compare: %s holds %d record(s); need at least two", path, len(trajectory))
	}
	last := &trajectory[len(trajectory)-1]
	var prev *benchRecord
	for i := len(trajectory) - 2; i >= 0; i-- {
		r := &trajectory[i]
		if r.Scale != last.Scale || r.Seed != last.Seed || r.Workers != last.Workers {
			continue
		}
		// Workers 0 means "all CPUs", so the effective parallelism is
		// GOMAXPROCS: records from machines of different widths are not
		// comparable then.
		if last.Workers == 0 && r.GOMAXPROCS != last.GOMAXPROCS {
			continue
		}
		prev = r
		break
	}
	if prev == nil {
		return fmt.Errorf("bench-compare: no earlier record matches the last one (scale %v, seed %d, workers %d, GOMAXPROCS %d)",
			last.Scale, last.Seed, last.Workers, last.GOMAXPROCS)
	}

	fmt.Fprintf(w, "# bench-compare: %s\n", path)
	fmt.Fprintf(w, "# old: %s  %s (%s)\n", prev.Timestamp, short(prev.GitCommit), prev.GoVersion)
	fmt.Fprintf(w, "# new: %s  %s (%s)\n", last.Timestamp, short(last.GitCommit), last.GoVersion)
	fmt.Fprintf(w, "# scale %v, seed %d, workers %d, GOMAXPROCS %d -> %d\n",
		last.Scale, last.Seed, last.Workers, prev.GOMAXPROCS, last.GOMAXPROCS)

	oldSecs := make(map[string]float64, len(prev.Experiments))
	for _, p := range prev.Experiments {
		oldSecs[p.ID] = p.Seconds
	}
	ids := make([]string, 0, len(last.Experiments))
	newSecs := make(map[string]float64, len(last.Experiments))
	shared := 0
	for _, p := range last.Experiments {
		ids = append(ids, p.ID)
		newSecs[p.ID] = p.Seconds
		if _, ok := oldSecs[p.ID]; ok {
			shared++
		}
	}
	if shared == 0 {
		return fmt.Errorf("bench-compare: the comparable records (%s and %s) share no experiments — nothing to diff",
			prev.Timestamp, last.Timestamp)
	}
	sort.Strings(ids)
	fmt.Fprintf(w, "%-28s %10s %10s %9s\n", "experiment", "old_s", "new_s", "delta")
	for _, id := range ids {
		after := newSecs[id]
		before, ok := oldSecs[id]
		if !ok {
			fmt.Fprintf(w, "%-28s %10s %10.3f %9s\n", id, "-", after, "new")
			continue
		}
		fmt.Fprintf(w, "%-28s %10.3f %10.3f %9s\n", id, before, after, deltaPct(before, after))
	}
	for _, p := range prev.Experiments {
		if _, ok := newSecs[p.ID]; !ok {
			fmt.Fprintf(w, "%-28s %10.3f %10s %9s\n", p.ID, p.Seconds, "-", "gone")
		}
	}
	fmt.Fprintf(w, "%-28s %10.3f %10.3f %9s\n", "total",
		prev.TotalSeconds, last.TotalSeconds,
		deltaPct(prev.TotalSeconds, last.TotalSeconds))
	return nil
}

// deltaPct formats the relative change from before to after. A zero
// baseline (a hand-edited or truncated record) has no defined relative
// change — render "n/a" rather than dividing by zero.
func deltaPct(before, after float64) string {
	if before == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(after-before)/before)
}

// short truncates a commit hash for display, keeping any +dirty suffix.
func short(commit string) string {
	const n = 12
	if len(commit) <= n {
		return commit
	}
	suffix := ""
	if len(commit) > 6 && commit[len(commit)-6:] == "+dirty" {
		suffix = "+dirty"
	}
	return commit[:n] + suffix
}
