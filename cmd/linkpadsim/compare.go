package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// comparablePair loads the trajectory at path and returns its last record
// plus the most recent earlier record with the same scale, seed and
// effective parallelism (equal workers, and equal GOMAXPROCS when
// workers is 0 = all CPUs) — the pair that is actually comparable.
func comparablePair(path string) (prev, last *benchRecord, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var trajectory []benchRecord
	if err := json.Unmarshal(data, &trajectory); err != nil {
		return nil, nil, fmt.Errorf("%s is not a bench trajectory: %w", path, err)
	}
	if len(trajectory) < 2 {
		return nil, nil, fmt.Errorf("%s holds %d record(s); need at least two", path, len(trajectory))
	}
	last = &trajectory[len(trajectory)-1]
	for i := len(trajectory) - 2; i >= 0; i-- {
		r := &trajectory[i]
		if r.Scale != last.Scale || r.Seed != last.Seed || r.Workers != last.Workers {
			continue
		}
		// Workers 0 means "all CPUs", so the effective parallelism is
		// GOMAXPROCS: records from machines of different widths are not
		// comparable then.
		if last.Workers == 0 && r.GOMAXPROCS != last.GOMAXPROCS {
			continue
		}
		return r, last, nil
	}
	return nil, nil, fmt.Errorf("no earlier record matches the last one (scale %v, seed %d, workers %d, GOMAXPROCS %d)",
		last.Scale, last.Seed, last.Workers, last.GOMAXPROCS)
}

// runBenchCompare prints per-experiment wall-clock deltas between the
// last two comparable records of the trajectory at path, so a perf
// regression shows up as a signed percentage instead of a manual JSON
// diff.
func runBenchCompare(w io.Writer, path string) error {
	if err := benchDiff(w, path, 0); err != nil {
		return fmt.Errorf("bench-compare: %w", err)
	}
	return nil
}

// benchGateFloorSeconds is the noise floor of the regression gate:
// experiments whose baseline ran shorter than this are skipped, because
// a CI runner's scheduling jitter alone swings sub-50 ms timings far
// past any sensible percentage threshold.
const benchGateFloorSeconds = 0.05

// runBenchGate is runBenchCompare with teeth: it prints the same delta
// table and then fails if any individual experiment above the noise
// floor slowed down by more than gatePct percent. Only per-experiment
// slowdowns gate — totals shift with experiment membership, new and
// removed experiments have no baseline, and speedups are never an error.
func runBenchGate(w io.Writer, path string, gatePct float64) error {
	if gatePct <= 0 {
		return fmt.Errorf("bench-gate: threshold must be positive, got %v", gatePct)
	}
	if err := benchDiff(w, path, gatePct); err != nil {
		return fmt.Errorf("bench-gate: %w", err)
	}
	return nil
}

// benchDiff prints the per-experiment delta table between the last two
// comparable records; with gatePct > 0 it also collects experiments
// slower than the threshold (baseline above the noise floor) and errors
// if any exist.
func benchDiff(w io.Writer, path string, gatePct float64) error {
	prev, last, err := comparablePair(path)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "# bench-compare: %s\n", path)
	fmt.Fprintf(w, "# old: %s  %s (%s)\n", prev.Timestamp, short(prev.GitCommit), prev.GoVersion)
	fmt.Fprintf(w, "# new: %s  %s (%s)\n", last.Timestamp, short(last.GitCommit), last.GoVersion)
	fmt.Fprintf(w, "# scale %v, seed %d, workers %d, GOMAXPROCS %d -> %d\n",
		last.Scale, last.Seed, last.Workers, prev.GOMAXPROCS, last.GOMAXPROCS)
	if gatePct > 0 {
		fmt.Fprintf(w, "# gate: fail on > +%.0f%% per experiment (baselines under %.0f ms ignored)\n",
			gatePct, benchGateFloorSeconds*1000)
	}

	oldSecs := make(map[string]float64, len(prev.Experiments))
	for _, p := range prev.Experiments {
		oldSecs[p.ID] = p.Seconds
	}
	ids := make([]string, 0, len(last.Experiments))
	newSecs := make(map[string]float64, len(last.Experiments))
	shared := 0
	for _, p := range last.Experiments {
		ids = append(ids, p.ID)
		newSecs[p.ID] = p.Seconds
		if _, ok := oldSecs[p.ID]; ok {
			shared++
		}
	}
	if shared == 0 {
		return fmt.Errorf("the comparable records (%s and %s) share no experiments — nothing to diff",
			prev.Timestamp, last.Timestamp)
	}
	sort.Strings(ids)
	var regressed []string
	fmt.Fprintf(w, "%-28s %10s %10s %9s\n", "experiment", "old_s", "new_s", "delta")
	for _, id := range ids {
		after := newSecs[id]
		before, ok := oldSecs[id]
		if !ok {
			fmt.Fprintf(w, "%-28s %10s %10.3f %9s\n", id, "-", after, "new")
			continue
		}
		fmt.Fprintf(w, "%-28s %10.3f %10.3f %9s\n", id, before, after, deltaPct(before, after))
		if gatePct > 0 && before >= benchGateFloorSeconds &&
			100*(after-before)/before > gatePct {
			regressed = append(regressed, fmt.Sprintf("%s (%.3fs -> %.3fs, %s)",
				id, before, after, deltaPct(before, after)))
		}
	}
	for _, p := range prev.Experiments {
		if _, ok := newSecs[p.ID]; !ok {
			fmt.Fprintf(w, "%-28s %10.3f %10s %9s\n", p.ID, p.Seconds, "-", "gone")
		}
	}
	fmt.Fprintf(w, "%-28s %10.3f %10.3f %9s\n", "total",
		prev.TotalSeconds, last.TotalSeconds,
		deltaPct(prev.TotalSeconds, last.TotalSeconds))
	if len(regressed) > 0 {
		return fmt.Errorf("%d experiment(s) regressed past +%.0f%%: %s",
			len(regressed), gatePct, joinLines(regressed))
	}
	return nil
}

// joinLines formats the regression list one entry per line for the error
// message.
func joinLines(xs []string) string {
	out := ""
	for _, x := range xs {
		out += "\n  " + x
	}
	return out
}

// deltaPct formats the relative change from before to after. A zero
// baseline (a hand-edited or truncated record) has no defined relative
// change — render "n/a" rather than dividing by zero.
func deltaPct(before, after float64) string {
	if before == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(after-before)/before)
}

// short truncates a commit hash for display, keeping any +dirty suffix.
func short(commit string) string {
	const n = 12
	if len(commit) <= n {
		return commit
	}
	suffix := ""
	if len(commit) > 6 && commit[len(commit)-6:] == "+dirty" {
		suffix = "+dirty"
	}
	return commit[:n] + suffix
}
