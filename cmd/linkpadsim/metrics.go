package main

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"sync"

	"linkpad/internal/obs"
)

// publishOnce guards the expvar registration: expvar.Publish panics on
// duplicate names, and tests may spin the server up more than once per
// process.
var publishOnce sync.Once

// serveMetrics starts the opt-in observability endpoint: expvar (with
// the obs counters and progress gauges under "linkpad") at /debug/vars
// and the net/http/pprof handlers at /debug/pprof/ on addr. The listen
// happens synchronously so a bad address fails the run immediately;
// serving then proceeds in the background for the run's duration. The
// returned stop function closes the server and its listener.
func serveMetrics(addr string, stderr io.Writer) (stop func(), err error) {
	publishOnce.Do(func() {
		expvar.Publish("linkpad", expvar.Func(func() any {
			pr := obs.ReadProgress()
			return map[string]any{
				"counters": obs.SnapshotMap(),
				"progress": map[string]int64{
					"experiments_total": pr.ExpsTotal,
					"experiments_done":  pr.ExpsDone,
					"cells_total":       pr.CellsTotal,
					"cells_done":        pr.CellsDone,
				},
			}
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics-addr: %w", err)
	}
	fmt.Fprintf(stderr, "metrics: expvar and pprof on http://%s/debug/\n", ln.Addr())
	srv := &http.Server{Handler: http.DefaultServeMux}
	stopped := make(chan struct{})
	go func() {
		// Serve returns a listener-closed error on intentional shutdown;
		// only unexpected failures are worth a line on stderr.
		if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			select {
			case <-stopped:
			default:
				fmt.Fprintln(stderr, "metrics:", serr)
			}
		}
	}()
	return func() {
		close(stopped)
		srv.Close()
	}, nil
}
