package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTrajectory writes a synthetic bench trajectory file.
func writeTrajectory(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchComparePicksMatchingRecord(t *testing.T) {
	// Three records: the middle one has a different scale and must be
	// skipped; the first is the comparable baseline for the last.
	path := writeTrajectory(t, `[
  {"timestamp":"2026-01-01T00:00:00Z","git_commit":"aaaaaaaaaaaaaaaa","go_version":"go1.24","gomaxprocs":8,
   "scale":0.5,"seed":1,"workers":0,"total_seconds":10,
   "experiments":[{"id":"fig4b","seconds":4,"rows":5},{"id":"gone-exp","seconds":6,"rows":1}]},
  {"timestamp":"2026-01-02T00:00:00Z","git_commit":"bbbbbbbbbbbbbbbb","go_version":"go1.24","gomaxprocs":8,
   "scale":1.0,"seed":1,"workers":0,"total_seconds":99,
   "experiments":[{"id":"fig4b","seconds":99,"rows":5}]},
  {"timestamp":"2026-01-03T00:00:00Z","git_commit":"cccccccccccccccc","go_version":"go1.24","gomaxprocs":8,
   "scale":0.5,"seed":1,"workers":0,"total_seconds":8,
   "experiments":[{"id":"fig4b","seconds":2,"rows":5},{"id":"new-exp","seconds":6,"rows":2}]}
]`)
	var sb strings.Builder
	if err := runBenchCompare(&sb, path); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"old: 2026-01-01T00:00:00Z", // the scale-1.0 record was skipped
		"new: 2026-01-03T00:00:00Z",
		"-50.0%", // fig4b: 4s -> 2s
		"new",    // new-exp has no baseline
		"gone",   // gone-exp vanished
		"-20.0%", // total: 10s -> 8s
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBenchCompareErrors(t *testing.T) {
	if err := runBenchCompare(&strings.Builder{}, filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file should fail")
	}
	one := writeTrajectory(t, `[{"timestamp":"t","scale":0.5,"seed":1,"workers":0,"experiments":[]}]`)
	if err := runBenchCompare(&strings.Builder{}, one); err == nil {
		t.Error("single record should fail")
	}
	mismatched := writeTrajectory(t, `[
  {"timestamp":"t1","scale":0.5,"seed":1,"workers":0,"experiments":[]},
  {"timestamp":"t2","scale":1.0,"seed":1,"workers":0,"experiments":[]}
]`)
	if err := runBenchCompare(&strings.Builder{}, mismatched); err == nil {
		t.Error("no comparable record should fail")
	}
	garbage := writeTrajectory(t, `{"not":"a trajectory"}`)
	if err := runBenchCompare(&strings.Builder{}, garbage); err == nil {
		t.Error("non-trajectory JSON should fail")
	}
	// workers=0 means "all CPUs": records from machines of different
	// widths are not comparable.
	widths := writeTrajectory(t, `[
  {"timestamp":"t1","gomaxprocs":1,"scale":0.5,"seed":1,"workers":0,"experiments":[]},
  {"timestamp":"t2","gomaxprocs":16,"scale":0.5,"seed":1,"workers":0,"experiments":[]}
]`)
	if err := runBenchCompare(&strings.Builder{}, widths); err == nil {
		t.Error("workers=0 records with different GOMAXPROCS should not be comparable")
	}
	// A comparable pair that shares no experiment IDs would print headers
	// followed by nothing useful; it must fail instead.
	disjoint := writeTrajectory(t, `[
  {"timestamp":"t1","gomaxprocs":8,"scale":0.5,"seed":1,"workers":0,"total_seconds":4,
   "experiments":[{"id":"fig4b","seconds":4,"rows":5}]},
  {"timestamp":"t2","gomaxprocs":8,"scale":0.5,"seed":1,"workers":0,"total_seconds":6,
   "experiments":[{"id":"ext-online","seconds":6,"rows":3}]}
]`)
	if err := runBenchCompare(&strings.Builder{}, disjoint); err == nil {
		t.Error("comparable records sharing no experiments should fail, not print an empty diff")
	} else if !strings.Contains(err.Error(), "share no experiments") {
		t.Errorf("unexpected error for disjoint records: %v", err)
	}
}

func TestBenchCompareZeroBaseline(t *testing.T) {
	// Zero-second baselines (hand-edited or truncated records) must not
	// divide by zero: the delta renders as n/a for both a per-experiment
	// row and the total.
	path := writeTrajectory(t, `[
  {"timestamp":"t1","gomaxprocs":8,"scale":0.5,"seed":1,"workers":0,"total_seconds":0,
   "experiments":[{"id":"fig4b","seconds":0,"rows":5}]},
  {"timestamp":"t2","gomaxprocs":8,"scale":0.5,"seed":1,"workers":0,"total_seconds":2,
   "experiments":[{"id":"fig4b","seconds":2,"rows":5}]}
]`)
	var sb strings.Builder
	if err := runBenchCompare(&sb, path); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "n/a"); got != 2 {
		t.Errorf("want 2 n/a deltas (row + total), got %d:\n%s", got, sb.String())
	}
}

func TestBenchGate(t *testing.T) {
	// One experiment regresses 3x, one is fine, and one regresses 10x but
	// from a 1 ms baseline under the noise floor: only the first gates.
	path := writeTrajectory(t, `[
  {"timestamp":"t1","gomaxprocs":8,"scale":0.5,"seed":1,"workers":0,"total_seconds":3.101,
   "experiments":[{"id":"fig8b","seconds":1,"rows":5},{"id":"fig4b","seconds":2.1,"rows":5},
                  {"id":"ext-sizes","seconds":0.001,"rows":2}]},
  {"timestamp":"t2","gomaxprocs":8,"scale":0.5,"seed":1,"workers":0,"total_seconds":5.01,
   "experiments":[{"id":"fig8b","seconds":3,"rows":5},{"id":"fig4b","seconds":2,"rows":5},
                  {"id":"ext-sizes","seconds":0.01,"rows":2}]}
]`)
	var sb strings.Builder
	err := runBenchGate(&sb, path, 25)
	if err == nil {
		t.Fatal("a 3x per-experiment regression should gate")
	}
	if !strings.Contains(err.Error(), "fig8b") {
		t.Errorf("gate error should name fig8b: %v", err)
	}
	if strings.Contains(err.Error(), "ext-sizes") {
		t.Errorf("sub-floor baselines must not gate: %v", err)
	}
	if !strings.Contains(sb.String(), "gate: fail on > +25%") {
		t.Errorf("gate header missing:\n%s", sb.String())
	}
	// The same trajectory passes with a looser threshold.
	if err := runBenchGate(&strings.Builder{}, path, 250); err != nil {
		t.Errorf("250%% threshold should pass: %v", err)
	}
	if err := runBenchGate(&strings.Builder{}, path, 0); err == nil {
		t.Error("non-positive threshold should be rejected")
	}
}

func TestBenchGatePassesOnSpeedup(t *testing.T) {
	path := writeTrajectory(t, `[
  {"timestamp":"t1","gomaxprocs":8,"scale":0.5,"seed":1,"workers":0,"total_seconds":4,
   "experiments":[{"id":"fig8b","seconds":4,"rows":5}]},
  {"timestamp":"t2","gomaxprocs":8,"scale":0.5,"seed":1,"workers":0,"total_seconds":2,
   "experiments":[{"id":"fig8b","seconds":2,"rows":5}]}
]`)
	if err := runBenchGate(&strings.Builder{}, path, 25); err != nil {
		t.Errorf("speedups must never gate: %v", err)
	}
}

func TestDeltaPct(t *testing.T) {
	if got := deltaPct(4, 2); got != "-50.0%" {
		t.Errorf("deltaPct(4, 2) = %q", got)
	}
	if got := deltaPct(0, 2); got != "n/a" {
		t.Errorf("deltaPct(0, 2) = %q", got)
	}
}
