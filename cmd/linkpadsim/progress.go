package main

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"linkpad/internal/obs"
)

// progressReporter owns the CLI's stderr status stream: the
// per-experiment "done in" lines that every run gets, plus the opt-in
// -progress live line with a cells-completed ETA. It reads only the
// obs progress gauges (atomics the experiment layer updates as sweep
// cells finish), never the simulation state, so it cannot perturb a
// run — and the ticker goroutine is stopped before run() returns so
// tests see a quiet stderr afterwards.
type progressReporter struct {
	w       io.Writer
	live    bool
	tty     bool
	began   time.Time
	stop0   chan struct{}
	done    chan struct{}
	mu      sync.Mutex // serialises line output against the ticker
	started bool
}

// newProgress builds the reporter; live enables the ticker line.
func newProgress(w io.Writer, live bool) *progressReporter {
	return &progressReporter{w: w, live: live, tty: isTerminal(w)}
}

// isTerminal reports whether w is an *os.File on a character device,
// in which case the live line may rewrite itself with \r.
func isTerminal(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	info, err := f.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}

// start begins the run: records the experiment count in the progress
// gauges and, when live, launches the ticker goroutine.
func (p *progressReporter) start(nExps int) {
	p.start0(nExps, time.Second)
}

func (p *progressReporter) start0(nExps int, period time.Duration) {
	p.started = true
	p.began = time.Now()
	obs.AddExperiments(nExps)
	if !p.live {
		return
	}
	p.stop0 = make(chan struct{})
	p.done = make(chan struct{})
	go func() {
		defer close(p.done)
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-p.stop0:
				return
			case <-tick.C:
				p.line()
			}
		}
	}()
}

// line emits one progress update. On a terminal it rewrites in place;
// on a pipe (CI logs) each update is its own line.
func (p *progressReporter) line() {
	pr := obs.ReadProgress()
	elapsed := time.Since(p.began)
	msg := fmt.Sprintf("progress: exp %d/%d, cells %d/%d, %s elapsed",
		pr.ExpsDone, pr.ExpsTotal, pr.CellsDone, pr.CellsTotal,
		elapsed.Round(time.Second))
	// ETA from the cell completion rate: cells are the finest-grained
	// deterministic unit of work, so the rate is meaningful as soon as a
	// few have landed. Experiments without cell decomposition contribute
	// nothing here; the exp counter still moves.
	if pr.CellsDone > 0 && pr.CellsDone < pr.CellsTotal {
		perCell := elapsed / time.Duration(pr.CellsDone)
		eta := perCell * time.Duration(pr.CellsTotal-pr.CellsDone)
		msg += fmt.Sprintf(", eta %s", eta.Round(time.Second))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tty {
		fmt.Fprintf(p.w, "\r\x1b[K%s", msg)
	} else {
		fmt.Fprintln(p.w, msg)
	}
}

// experimentDone marks one experiment finished and always prints its
// timing line — stdout table runs included, not just -o mode.
func (p *progressReporter) experimentDone(id string, elapsed time.Duration) {
	obs.ExperimentDone()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.live && p.tty {
		// Clear the in-place progress line before the permanent one.
		fmt.Fprint(p.w, "\r\x1b[K")
	}
	fmt.Fprintf(p.w, "%s: done in %v\n", id, elapsed.Round(time.Millisecond))
}

// stop halts the ticker goroutine (if any) and prints a final summary
// line for live runs. Safe to call when start was never reached.
func (p *progressReporter) stop() {
	if !p.started {
		return
	}
	if p.stop0 != nil {
		close(p.stop0)
		<-p.done
		p.stop0 = nil
		pr := obs.ReadProgress()
		p.mu.Lock()
		if p.tty {
			fmt.Fprint(p.w, "\r\x1b[K")
		}
		fmt.Fprintf(p.w, "progress: exp %d/%d, cells %d/%d, %s total\n",
			pr.ExpsDone, pr.ExpsTotal, pr.CellsDone, pr.CellsTotal,
			time.Since(p.began).Round(time.Millisecond))
		p.mu.Unlock()
	}
}
