package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSlug(t *testing.T) {
	for in, want := range map[string]string{
		"Determinism model":          "determinism-model",
		"CI gates":                   "ci-gates",
		"The paper in one paragraph": "the-paper-in-one-paragraph",
		"Section / claim map":        "section--claim-map",
		"make docs, `go vet`":        "make-docs-go-vet",
	} {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckTarget(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "doc.md")
	other := filepath.Join(dir, "other.md")
	if err := os.WriteFile(doc, []byte("# Title\n## A Section\nbody\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(other, []byte("# Other Doc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for target, ok := range map[string]bool{
		"other.md":            true,
		"other.md#other-doc":  true,
		"#a-section":          true,
		"https://example.com": true,
		"missing.md":          false,
		"other.md#nope":       false,
		"#missing-heading":    false,
	} {
		problem := checkTarget(doc, target)
		if ok && problem != "" {
			t.Errorf("checkTarget(%q) = %q, want ok", target, problem)
		}
		if !ok && problem == "" {
			t.Errorf("checkTarget(%q) passed, want a problem", target)
		}
	}
}

func TestRunOnRepoDocs(t *testing.T) {
	// The real repository documents must pass their own gate.
	root := "../.."
	var files []string
	for _, f := range []string{"README.md", "DESIGN.md", "PAPER.md", "CHANGES.md"} {
		files = append(files, filepath.Join(root, f))
	}
	if code := run(files); code != 0 {
		t.Fatalf("docscheck failed on the repository docs (exit %d)", code)
	}
}
