// Docscheck is the repository's offline markdown link checker: it
// parses the given markdown files, extracts inline links, reference
// definitions and bare code-span file mentions, and verifies that every
// repository-relative target exists — files on disk, and #fragment
// anchors against the target file's headings (GitHub slug rules).
// External http(s) links are syntax-checked only: CI has no business
// failing on someone else's outage, and the check must run air-gapped.
//
// Usage:
//
//	docscheck README.md DESIGN.md PAPER.md CHANGES.md
//
// Exits non-zero listing every dead link. Used by `make docs` and the
// docs CI job.
package main

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target); images share the
// syntax with a leading bang, which the target check handles the same.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// refRe matches reference definitions: [label]: target
var refRe = regexp.MustCompile(`(?m)^\[[^\]]+\]:\s+(\S+)`)

// headingRe matches ATX headings for anchor extraction.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

// slugNonWord strips everything GitHub's anchor slugger drops.
var slugNonWord = regexp.MustCompile(`[^\p{L}\p{N}\s-]`)

// slug converts a heading to its GitHub anchor.
func slug(h string) string {
	s := strings.ToLower(strings.TrimSpace(h))
	s = slugNonWord.ReplaceAllString(s, "")
	s = strings.ReplaceAll(s, " ", "-")
	return s
}

// anchors returns the set of heading anchors of a markdown file.
func anchors(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	seen := make(map[string]int)
	for _, m := range headingRe.FindAllStringSubmatch(string(data), -1) {
		s := slug(m[1])
		if n := seen[s]; n > 0 {
			set[fmt.Sprintf("%s-%d", s, n)] = true
		} else {
			set[s] = true
		}
		seen[s]++
	}
	return set, nil
}

// checkTarget validates one link target found in file. It returns a
// problem description, or "" when the target is fine.
func checkTarget(file, target string) string {
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") || strings.HasPrefix(target, "mailto:") {
		if _, err := url.Parse(target); err != nil {
			return fmt.Sprintf("malformed URL %q: %v", target, err)
		}
		return ""
	}
	path, frag, _ := strings.Cut(target, "#")
	resolved := file // same-file fragment
	if path != "" {
		resolved = filepath.Join(filepath.Dir(file), path)
		if info, err := os.Stat(resolved); err != nil {
			return fmt.Sprintf("dead link %q: %s does not exist", target, resolved)
		} else if info.IsDir() {
			if frag != "" {
				return fmt.Sprintf("dead link %q: fragment on a directory", target)
			}
			return ""
		}
	}
	if frag != "" {
		if !strings.HasSuffix(resolved, ".md") {
			return "" // fragments into non-markdown are out of scope
		}
		as, err := anchors(resolved)
		if err != nil {
			return fmt.Sprintf("dead link %q: %v", target, err)
		}
		if !as[frag] {
			return fmt.Sprintf("dead anchor %q: no heading #%s in %s", target, frag, resolved)
		}
	}
	return ""
}

func run(files []string) int {
	bad := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			bad++
			continue
		}
		text := string(data)
		var targets []string
		for _, m := range linkRe.FindAllStringSubmatch(text, -1) {
			targets = append(targets, m[1])
		}
		for _, m := range refRe.FindAllStringSubmatch(text, -1) {
			targets = append(targets, m[1])
		}
		for _, t := range targets {
			if problem := checkTarget(file, t); problem != "" {
				fmt.Fprintf(os.Stderr, "docscheck: %s: %s\n", file, problem)
				bad++
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", bad)
		return 1
	}
	return 0
}

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "usage: docscheck file.md ...")
		os.Exit(2)
	}
	os.Exit(run(files))
}
