// Command padtrace generates padded-traffic PIAT traces from the
// simulated link-padding system, in the text format consumed by
// cmd/advclassify. It models the paper's capture step: a network analyzer
// dumping the padded stream at the adversary's observation point.
//
// Usage:
//
//	padtrace -class 1 -n 200000 -o high.piat
//	padtrace -class 0 -sigmat 50e-6 -hops 15 -util 0.2 -o low-vit-wan.piat
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"linkpad/internal/core"
	"linkpad/internal/trace"
	"linkpad/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "padtrace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		class    = flag.Int("class", 0, "payload rate class: 0 = 10pps, 1 = 40pps")
		n        = flag.Int("n", 100000, "number of PIATs to emit")
		sigmaT   = flag.Float64("sigmat", 0, "VIT interval std dev in seconds (0 = CIT)")
		hops     = flag.Int("hops", 0, "number of congested routers between tap and gateway")
		util     = flag.Float64("util", 0.2, "cross-traffic utilization per hop")
		loss     = flag.Float64("loss", 0, "tap packet-miss probability")
		res      = flag.Float64("res", 0, "tap timestamp resolution in seconds (0 = perfect)")
		seed     = flag.Uint64("seed", 1, "master random seed")
		streamID = flag.Uint64("stream", 1, "stream replica id (use different ids for train vs eval)")
		out      = flag.String("o", "", "output trace file (default stdout)")
	)
	flag.Parse()

	cfg := core.DefaultLabConfig()
	cfg.SigmaT = *sigmaT
	cfg.Seed = *seed
	cfg.TapLossProb = *loss
	cfg.TapResolution = *res
	for i := 0; i < *hops; i++ {
		cfg.Hops = append(cfg.Hops, core.HopSpec{
			CapacityBps: 100e6,
			PacketBytes: 1500,
			Util:        traffic.Constant(*util),
		})
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	if *class < 0 || *class >= len(cfg.Rates) {
		return fmt.Errorf("class %d out of range", *class)
	}
	if *n <= 0 {
		return fmt.Errorf("need -n > 0")
	}
	src, err := sys.PIATSource(*class, *streamID)
	if err != nil {
		return err
	}
	piats := make([]float64, *n)
	for i := range piats {
		piats[i] = src.Next()
	}
	meta := map[string]string{
		"class":  cfg.Rates[*class].Label,
		"policy": map[bool]string{true: "VIT", false: "CIT"}[*sigmaT > 0],
		"sigmat": strconv.FormatFloat(*sigmaT, 'g', -1, 64),
		"hops":   strconv.Itoa(*hops),
		"util":   strconv.FormatFloat(*util, 'g', -1, 64),
		"seed":   strconv.FormatUint(*seed, 10),
		"stream": strconv.FormatUint(*streamID, 10),
	}
	if *out == "" {
		return trace.Write(os.Stdout, meta, piats)
	}
	return trace.WriteFile(*out, meta, piats)
}
