// Command advclassify is the stand-alone adversary: it trains the paper's
// Bayes classifier from per-class PIAT training traces and classifies
// evaluation traces, reporting the detection rate and confusion matrix.
//
// Usage:
//
//	advclassify -train low-train.piat,high-train.piat \
//	            -eval  low-eval.piat,high-eval.piat \
//	            -feature entropy -window 1000
//
// Training and evaluation traces are given in class order; evaluation
// trace i is assumed to carry class i's traffic (its windows' true labels).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"linkpad/internal/adversary"
	"linkpad/internal/analytic"
	"linkpad/internal/bayes"
	"linkpad/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "advclassify:", err)
		os.Exit(1)
	}
}

// sliceSource replays a PIAT slice, erroring out via panic-free saturation
// at the end (callers size their reads to the data).
type sliceSource struct {
	xs []float64
	i  int
}

func (s *sliceSource) Next() float64 {
	if s.i >= len(s.xs) {
		return s.xs[len(s.xs)-1]
	}
	x := s.xs[s.i]
	s.i++
	return x
}

func parseFeature(name string) (analytic.Feature, error) {
	switch name {
	case "mean":
		return analytic.FeatureMean, nil
	case "variance":
		return analytic.FeatureVariance, nil
	case "entropy":
		return analytic.FeatureEntropy, nil
	default:
		return 0, fmt.Errorf("unknown feature %q (mean, variance, entropy)", name)
	}
}

// options collects the tool's parameters; classify is the testable core.
type options struct {
	trainPaths []string
	evalPaths  []string
	feature    analytic.Feature
	window     int
	binWidth   float64
}

func run() error {
	var (
		trainArg = flag.String("train", "", "comma-separated training traces, one per class")
		evalArg  = flag.String("eval", "", "comma-separated evaluation traces, one per class")
		featArg  = flag.String("feature", "entropy", "feature statistic: mean, variance or entropy")
		window   = flag.Int("window", 1000, "sample size n (PIATs per classified window)")
		binWidth = flag.Float64("binwidth", 0, "entropy histogram bin width in seconds (0 = default 2us)")
	)
	flag.Parse()

	if *trainArg == "" || *evalArg == "" {
		return fmt.Errorf("need -train and -eval")
	}
	feature, err := parseFeature(*featArg)
	if err != nil {
		return err
	}
	return classify(os.Stdout, options{
		trainPaths: strings.Split(*trainArg, ","),
		evalPaths:  strings.Split(*evalArg, ","),
		feature:    feature,
		window:     *window,
		binWidth:   *binWidth,
	})
}

// classify trains the Bayes adversary on the training traces and reports
// the confusion matrix of the evaluation traces to w.
func classify(w io.Writer, opts options) error {
	if opts.window < 2 {
		return fmt.Errorf("window size must be at least 2 (got %d)", opts.window)
	}
	if len(opts.trainPaths) < 2 {
		return fmt.Errorf("need at least two training traces (one per class)")
	}
	if len(opts.evalPaths) != len(opts.trainPaths) {
		return fmt.Errorf("need one evaluation trace per class (%d != %d)",
			len(opts.evalPaths), len(opts.trainPaths))
	}

	labels := make([]string, len(opts.trainPaths))
	sources := make([]adversary.PIATSource, len(opts.trainPaths))
	minWindows := int(^uint(0) >> 1)
	for i, p := range opts.trainPaths {
		meta, piats, err := trace.ReadFile(p)
		if err != nil {
			return fmt.Errorf("training trace %s: %w", p, err)
		}
		labels[i] = meta["class"]
		if labels[i] == "" {
			labels[i] = fmt.Sprintf("class%d", i)
		}
		sources[i] = &sliceSource{xs: piats}
		if w := len(piats) / opts.window; w < minWindows {
			minWindows = w
		}
	}
	if minWindows < 2 {
		return fmt.Errorf("training traces too short for window size %d", opts.window)
	}

	att, err := adversary.Train(adversary.TrainConfig{
		Extractor:       adversary.Extractor{Feature: opts.feature, EntropyBinWidth: opts.binWidth},
		WindowSize:      opts.window,
		WindowsPerClass: minWindows,
	}, labels, sources)
	if err != nil {
		return err
	}

	cm := bayes.NewConfusion(labels)
	for class, p := range opts.evalPaths {
		_, piats, err := trace.ReadFile(p)
		if err != nil {
			return fmt.Errorf("evaluation trace %s: %w", p, err)
		}
		src := &sliceSource{xs: piats}
		windows := len(piats) / opts.window
		if windows == 0 {
			return fmt.Errorf("evaluation trace %s shorter than one window", p)
		}
		for w := 0; w < windows; w++ {
			pred, err := att.ClassifyNext(src)
			if err != nil {
				return err
			}
			cm.Add(class, pred)
		}
	}
	fmt.Fprintf(w, "feature: %s  window: %d  training windows/class: %d\n",
		opts.feature, opts.window, minWindows)
	fmt.Fprintln(w, cm.String())
	return nil
}
