package main

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"linkpad/internal/analytic"
	"linkpad/internal/core"
	"linkpad/internal/trace"
)

func TestParseFeature(t *testing.T) {
	cases := []struct {
		name string
		want analytic.Feature
		ok   bool
	}{
		{"mean", analytic.FeatureMean, true},
		{"variance", analytic.FeatureVariance, true},
		{"entropy", analytic.FeatureEntropy, true},
		{"iqr", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := parseFeature(c.name)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseFeature(%q) = (%v, %v), want %v", c.name, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("parseFeature(%q) accepted", c.name)
		}
	}
}

// The slice source replays its data and saturates at the end instead of
// panicking (callers size reads to the trace length).
func TestSliceSource(t *testing.T) {
	s := &sliceSource{xs: []float64{1, 2, 3}}
	for i, want := range []float64{1, 2, 3, 3, 3} {
		if got := s.Next(); got != want {
			t.Fatalf("Next %d = %v, want %v", i, got, want)
		}
	}
}

// writeClassTrace simulates the padded stream of one class and writes it
// as a trace file, returning the path.
func writeClassTrace(t *testing.T, dir, name, label string, class int, streamID uint64, n int) string {
	t.Helper()
	sys, err := core.NewSystem(core.DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, err := sys.PIATSource(class, streamID)
	if err != nil {
		t.Fatal(err)
	}
	piats := make([]float64, n)
	for i := range piats {
		piats[i] = src.Next()
	}
	path := filepath.Join(dir, name)
	if err := trace.WriteFile(path, map[string]string{"class": label}, piats); err != nil {
		t.Fatal(err)
	}
	return path
}

// End-to-end: traces generated from the lab system train the classifier
// and the evaluation traces are identified nearly perfectly — the
// variance leak survives the file round-trip.
func TestClassifyEndToEnd(t *testing.T) {
	dir := t.TempDir()
	const window = 500
	const piats = 20 * window
	lowTrain := writeClassTrace(t, dir, "low-train.piat", "10pps", 0, 1, piats)
	highTrain := writeClassTrace(t, dir, "high-train.piat", "40pps", 1, 1, piats)
	lowEval := writeClassTrace(t, dir, "low-eval.piat", "10pps", 0, 2, piats)
	highEval := writeClassTrace(t, dir, "high-eval.piat", "40pps", 1, 2, piats)

	var out strings.Builder
	err := classify(&out, options{
		trainPaths: []string{lowTrain, highTrain},
		evalPaths:  []string{lowEval, highEval},
		feature:    analytic.FeatureEntropy,
		window:     window,
	})
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{"feature: entropy", "window: 500", "10pps", "40pps", "detection rate"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// Parse the detection rate off the confusion summary; CIT at n=500 is
	// nearly fully detectable.
	idx := strings.Index(report, "detection rate:")
	if idx < 0 {
		t.Fatalf("no detection rate in report:\n%s", report)
	}
	fields := strings.Fields(report[idx:])
	rate, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		t.Fatalf("unparseable detection rate %q: %v", fields[2], err)
	}
	if rate < 0.85 {
		t.Errorf("detection rate = %v, want > 0.85", rate)
	}
}

// Error paths: mismatched class counts, short traces, missing files.
func TestClassifyValidation(t *testing.T) {
	dir := t.TempDir()
	const window = 500
	low := writeClassTrace(t, dir, "low.piat", "10pps", 0, 1, 4*window)
	high := writeClassTrace(t, dir, "high.piat", "40pps", 1, 1, 4*window)

	if err := classify(&strings.Builder{}, options{
		trainPaths: []string{low},
		evalPaths:  []string{low},
		feature:    analytic.FeatureVariance,
		window:     window,
	}); err == nil {
		t.Error("single-class training accepted")
	}
	if err := classify(&strings.Builder{}, options{
		trainPaths: []string{low, high},
		evalPaths:  []string{low},
		feature:    analytic.FeatureVariance,
		window:     window,
	}); err == nil {
		t.Error("mismatched evaluation trace count accepted")
	}
	if err := classify(&strings.Builder{}, options{
		trainPaths: []string{low, high},
		evalPaths:  []string{low, high},
		feature:    analytic.FeatureVariance,
		window:     10 * window, // too large for the trace length
	}); err == nil {
		t.Error("too-short training traces accepted")
	}
	if err := classify(&strings.Builder{}, options{
		trainPaths: []string{filepath.Join(dir, "missing.piat"), high},
		evalPaths:  []string{low, high},
		feature:    analytic.FeatureVariance,
		window:     window,
	}); err == nil {
		t.Error("missing training trace accepted")
	}
}

// Traces without a class label fall back to positional labels.
func TestClassifyDefaultLabels(t *testing.T) {
	dir := t.TempDir()
	const window = 300
	sys, err := core.NewSystem(core.DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, class int, id uint64) string {
		src, err := sys.PIATSource(class, id)
		if err != nil {
			t.Fatal(err)
		}
		xs := make([]float64, 6*window)
		for i := range xs {
			xs[i] = src.Next()
		}
		path := filepath.Join(dir, name)
		if err := trace.WriteFile(path, nil, xs); err != nil {
			t.Fatal(err)
		}
		return path
	}
	var out strings.Builder
	err = classify(&out, options{
		trainPaths: []string{write("a.piat", 0, 1), write("b.piat", 1, 1)},
		evalPaths:  []string{write("c.piat", 0, 2), write("d.piat", 1, 2)},
		feature:    analytic.FeatureVariance,
		window:     window,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "class0") || !strings.Contains(out.String(), "class1") {
		t.Errorf("default labels missing:\n%s", out.String())
	}
}

// A non-positive or degenerate window size must error, not panic with a
// divide by zero.
func TestClassifyRejectsBadWindow(t *testing.T) {
	dir := t.TempDir()
	low := writeClassTrace(t, dir, "low.piat", "10pps", 0, 1, 1000)
	high := writeClassTrace(t, dir, "high.piat", "40pps", 1, 1, 1000)
	for _, w := range []int{0, -5, 1} {
		err := classify(&strings.Builder{}, options{
			trainPaths: []string{low, high},
			evalPaths:  []string{low, high},
			feature:    analytic.FeatureVariance,
			window:     w,
		})
		if err == nil {
			t.Errorf("window %d accepted", w)
		}
	}
}
