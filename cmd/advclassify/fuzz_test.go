package main

import (
	"math"
	"strings"
	"testing"

	"linkpad/internal/trace"
)

// FuzzTraceRead fuzzes the trace parsing advclassify feeds its training
// and evaluation data through: arbitrary input — malformed floats, bare
// '#' lines, empty files, binary garbage — must either parse or error
// cleanly, never panic, and a successful parse must uphold the format's
// contract (at least one sample, metadata map present).
func FuzzTraceRead(f *testing.F) {
	f.Add("# class: 10pps\n0.01\n0.011\n")
	f.Add("")
	f.Add("\n\n\n")
	f.Add("# bare metadata line without colon\n0.01\n")
	f.Add("#\n#:\n# :\n0.01\n")
	f.Add("not-a-float\n")
	f.Add("0.01\n1e309\n")   // overflows float64
	f.Add("NaN\n+Inf\n-Inf") // parse as non-finite floats
	f.Add("0.01\n0x1p-3\n0.01e\n")
	f.Add(strings.Repeat("9", 400) + "\n")
	f.Add("# k: v\r\n0.02\r\n") // CR line endings
	f.Fuzz(func(t *testing.T, input string) {
		meta, piats, err := trace.Read(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(piats) == 0 {
			t.Fatal("successful parse returned no samples")
		}
		if meta == nil {
			t.Fatal("successful parse returned nil metadata")
		}
	})
}

// FuzzClassifyWindow fuzzes the classification core downstream of the
// parser with whatever sample values survive parsing (including the
// non-finite ones ParseFloat accepts): training on a fuzzed trace must
// error cleanly or classify, never panic.
func FuzzClassifyWindow(f *testing.F) {
	f.Add("0.010\n0.011\n0.009\n0.012\n0.010\n0.011\n0.009\n0.012\n")
	f.Add("NaN\nNaN\nNaN\nNaN\n")
	f.Add("+Inf\n0.01\n-Inf\n0.01\n")
	f.Add("0\n0\n0\n0\n")
	f.Add("-1\n-2\n-3\n-4\n")
	f.Fuzz(func(t *testing.T, input string) {
		_, piats, err := trace.Read(strings.NewReader(input))
		if err != nil || len(piats) < 4 {
			return
		}
		// Mirror the tool's wiring: one fuzzed class against a fixed sane
		// class, windows sized to the shorter trace.
		sane := make([]float64, len(piats))
		for i := range sane {
			sane[i] = 0.01 + 0.0001*math.Sin(float64(i))
		}
		dir := t.TempDir()
		fuzzPath := dir + "/fuzz.piat"
		sanePath := dir + "/sane.piat"
		if err := trace.WriteFile(fuzzPath, map[string]string{"class": "fuzz"}, piats); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteFile(sanePath, map[string]string{"class": "sane"}, sane); err != nil {
			t.Fatal(err)
		}
		// Errors are fine (degenerate data must be rejected); panics are
		// the bug this fuzz target exists to catch.
		_ = classify(&strings.Builder{}, options{
			trainPaths: []string{fuzzPath, sanePath},
			evalPaths:  []string{fuzzPath, sanePath},
			feature:    1, // variance
			window:     len(piats) / 2,
		})
	})
}
