// Quickstart: build the paper's laboratory system, attack it with the
// three feature statistics, and compare the measured detection rates
// against the closed-form theorems.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"linkpad"
)

func main() {
	// The paper's §5 baseline: CIT padding every 10 ms, payload at
	// 10 pps or 40 pps with equal priors, adversary tapping the sender
	// gateway's output (the defender's worst case).
	sys, err := linkpad.NewSystem(linkpad.DefaultLabConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("CIT link padding, tap at the sender gateway, sample size n = 1000")
	fmt.Println()
	fmt.Printf("%-10s %12s %12s %10s\n", "feature", "measured", "theorem", "r")
	// One scenario measures every feature statistic against the same
	// Monte Carlo windows: build the spec, run it.
	features := []linkpad.Feature{
		linkpad.FeatureMean, linkpad.FeatureVariance, linkpad.FeatureEntropy,
	}
	sc, err := sys.Build(linkpad.AttackSetSpec{
		Attack:   linkpad.AttackConfig{WindowSize: 1000},
		Features: features,
	})
	if err != nil {
		log.Fatal(err)
	}
	out, err := sc.Run(context.Background(), linkpad.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for i, f := range features {
		res := out.AttackSet[i]
		fmt.Printf("%-10s %12.3f %12.3f %10.3f\n",
			f, res.DetectionRate, res.TheoryDetectionRate, res.EmpiricalR)
	}

	// The bandwidth price of padding: dummy fraction per class.
	fmt.Println()
	for class, label := range sys.Labels() {
		overhead, err := sys.PaddingOverhead(class)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("padding overhead at %s payload: %.0f%% dummies\n", label, overhead*100)
	}

	fmt.Println()
	fmt.Println("Conclusion (paper Fig. 4b): against CIT padding the variance and")
	fmt.Println("entropy features identify the payload rate almost surely at n=1000,")
	fmt.Println("while the sample mean stays near guessing.")
}
