// VIT design: the paper's core guideline is to replace the constant
// interval timer with a variable one whose interval variance σ_T² is
// large enough to push the PIAT variance ratio r to 1. This example
// solves for σ_T two ways — analytically from the theorems, and
// empirically by calibrating against the simulated attacker — then
// verifies the deployed system.
//
// Run with: go run ./examples/vitdesign
package main

import (
	"context"
	"fmt"
	"log"

	"linkpad"
)

func main() {
	const (
		target = 0.60 // cap the adversary at 60% detection
		n      = 1000 // against samples of 1000 PIATs
	)
	sys, err := linkpad.NewSystem(linkpad.DefaultLabConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The baseline and verification attacks run through the unified
	// scenario API against two different systems.
	run := func(s *linkpad.System, cfg linkpad.AttackConfig) *linkpad.AttackResult {
		sc, err := s.Build(linkpad.AttackSetSpec{
			Attack:   cfg,
			Features: []linkpad.Feature{linkpad.FeatureEntropy},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sc.Run(context.Background(), linkpad.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		return res.AttackSet[0]
	}

	// CIT baseline: how exposed are we?
	base := run(sys, linkpad.AttackConfig{WindowSize: n})
	fmt.Printf("CIT baseline: entropy-feature detection %.3f at n=%d (r=%.2f)\n",
		base.DetectionRate, n, base.EmpiricalR)

	// Analytic guideline (Theorem 3 inverted). This treats both classes
	// as Gaussians, which underestimates a KDE attacker that can also see
	// the blocking-delay *shape* difference — so treat it as a floor.
	sigmaAnalytic, err := sys.DesignVIT(linkpad.FeatureEntropy, target, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytic σ_T (Theorem 3 inverted):  %7.1f µs\n", sigmaAnalytic*1e6)

	// Empirical calibration against the simulated attacker.
	attack := linkpad.AttackConfig{
		Feature:      linkpad.FeatureEntropy,
		WindowSize:   n,
		TrainWindows: 120,
		EvalWindows:  120,
	}
	sigmaCal, err := sys.CalibrateVIT(target, attack)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated σ_T (simulated attack):  %7.1f µs\n", sigmaCal*1e6)

	// Deploy and verify on an independent realization.
	cfg := linkpad.DefaultLabConfig()
	cfg.SigmaT = sigmaCal
	cfg.Seed = 2026
	hard, err := linkpad.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := run(hard, attack)
	fmt.Printf("deployed VIT system: detection %.3f (target %.2f)\n",
		res.DetectionRate, target)
	fmt.Println()
	fmt.Println("Note: VIT changes only the timing pattern — the padded packet rate")
	fmt.Println("and therefore the bandwidth overhead are unchanged; the cost is a")
	fmt.Println("modestly larger worst-case queueing delay at the gateway.")
}
