// Population demonstrates the multi-user engine end to end: dozens of
// senders with private recipient profiles share a padded infrastructure,
// and a global passive adversary runs the two canonical population-scale
// attacks against it — statistical disclosure (who talks to whom, from
// mix rounds) and per-flow throughput-fingerprint correlation (which
// egress flow belongs to which ingress user). Cover traffic resists the
// first; timer padding defeats the second. In between, the SDA arms
// race: stronger estimators against pool mixes and adaptive dummies.
//
// Run with: go run ./examples/population
package main

import (
	"context"
	"fmt"
	"log"

	"linkpad"
)

func main() {
	sys, err := linkpad.NewSystem(linkpad.DefaultLabConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Every attack below goes through the unified scenario API: build
	// the spec once, run it, read the protocol's slot of the result.
	run := func(spec linkpad.Spec) *linkpad.ScenarioResult {
		sc, err := sys.Build(spec)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sc.Run(context.Background(), linkpad.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// Part 1: statistical disclosure against the shared batching mix.
	// Every round the mix flushes 8 messages; the adversary contrasts
	// rounds with and without each target until the target's contact set
	// stands out of the background. Cover traffic (dummy messages to
	// random recipients) buys rounds.
	fmt.Println("statistical disclosure: 48 users, 60 recipients, 3 contacts each")
	for _, cover := range []float64{0, 2} {
		res := run(linkpad.DisclosureSpec{
			Population: linkpad.PopulationSpec{
				Users:      48,
				Recipients: 60,
				CoverRate:  cover,
			},
			Disclosure: linkpad.DisclosureConfig{MaxRounds: 6000},
		}).Disclosure
		fmt.Printf("  cover %.0fx: %2.0f%% of targets disclosed, mean %4.0f rounds, residual anonymity %.2f\n",
			cover, 100*res.DisclosedFrac, res.MeanRounds, res.MeanAnonymity)
	}

	// Part 2: the SDA arms race. Upgrade both sides — the adversary
	// swaps the classic round-contrast estimator for least-squares
	// (which models how *many* messages the target contributed per
	// round, not just whether it sent), the mix pools messages across
	// round boundaries, and the targets re-address their cover traffic
	// at the estimator's current top false suspects. Each upgrade moves
	// the rounds-to-disclosure needle in its own direction.
	fmt.Println("SDA arms race: 24 users, pool mix, 2500-round budget")
	for _, duel := range []struct {
		name string
		est  linkpad.EstimatorKind
		dum  linkpad.DummyPolicy
	}{
		{"classic vs uniform dummies ", linkpad.EstimatorClassic, linkpad.DummyUniform},
		{"least-squares vs uniform   ", linkpad.EstimatorLeastSquares, linkpad.DummyUniform},
		{"least-squares vs adaptive  ", linkpad.EstimatorLeastSquares, linkpad.DummyAdaptive},
	} {
		res := run(linkpad.DisclosureSpec{
			Population: linkpad.PopulationSpec{
				Users:      24,
				Recipients: 60,
				CoverRate:  1,
				Dummies:    duel.dum,
			},
			Disclosure: linkpad.DisclosureConfig{
				Batch:     48,
				Mix:       linkpad.MixPolicySpec{Kind: linkpad.MixPool, Retain: 0.5},
				Estimator: duel.est,
				MaxRounds: 2500,
			},
		}).Disclosure
		fmt.Printf("  %s: %3.0f%% disclosed, mean %4.0f rounds\n",
			duel.name, 100*res.DisclosedFrac, res.MeanRounds)
	}

	// Part 3: per-flow correlation against padded links. The adversary
	// matches egress flows to ingress users by windowed rate correlation
	// plus the paper's PIAT class features. Unpadded links lose every
	// flow; CIT padding shrinks the leak to the rate class.
	fmt.Println("flow correlation: 24 users, 60 s of observation per flow")
	spec := linkpad.PopulationSpec{Users: 24, Recipients: 60}
	raw := run(linkpad.FlowCorrelationSpec{
		Population: spec,
		Corr:       linkpad.FlowCorrConfig{Duration: 60, Raw: true},
	}).FlowCorr
	fmt.Printf("  unpadded: %3.0f%% of flows matched (mean rate correlation %.2f)\n",
		100*raw.Accuracy, raw.MeanCorrTrue)
	cit := run(linkpad.FlowCorrelationSpec{
		Population: spec,
		Corr: linkpad.FlowCorrConfig{
			Duration: 60,
			Features: []linkpad.Feature{linkpad.FeatureVariance, linkpad.FeatureEntropy},
		},
	}).FlowCorr
	fmt.Printf("  CIT padded: %3.0f%% of flows matched (correlation %.2f), but class identified for %.0f%%\n",
		100*cit.Accuracy, cit.MeanCorrTrue, 100*cit.ClassAccuracy)
	fmt.Println("padding hides the individual inside the class; only cover traffic hides who talks to whom")
}
