// Size camouflage: the paper assumes all packets have a constant size
// (§3.2 remark 3), deferring variable sizes to its companion work [7].
// This example shows why the assumption is load-bearing: with raw packet
// sizes on the wire, an adversary identifies the application (interactive
// SSH-like vs bulk FTP-like) from a hundred packets; constant-size
// padding buys exact size secrecy at a quantified byte cost, and bucket
// padding sits uncomfortably in between.
//
// Run with: go run ./examples/sizecamo
package main

import (
	"fmt"
	"log"

	"linkpad"
)

func main() {
	labels := []string{"interactive", "bulk"}
	interactive, err := linkpad.NewSizeProfile(
		[]int{64, 128, 256, 576, 1500},
		[]float64{0.55, 0.25, 0.10, 0.07, 0.03})
	if err != nil {
		log.Fatal(err)
	}
	bulk, err := linkpad.NewSizeProfile(
		[]int{64, 576, 1500},
		[]float64{0.30, 0.05, 0.65})
	if err != nil {
		log.Fatal(err)
	}
	profiles := []*linkpad.SizeProfile{interactive, bulk}

	constant, err := linkpad.NewConstantSizePad(1500)
	if err != nil {
		log.Fatal(err)
	}
	bucket, err := linkpad.NewBucketSizePad([]int{128, 576, 1500})
	if err != nil {
		log.Fatal(err)
	}

	cfg := linkpad.SizeAttackConfig{
		WindowSize:   100,
		TrainWindows: 200,
		EvalWindows:  200,
		Seed:         7,
	}
	fmt.Println("Identifying the application from 100 observed wire sizes:")
	fmt.Println()
	fmt.Printf("%-18s %10s %22s %16s\n", "padding", "detection", "overhead(interactive)", "overhead(bulk)")
	for _, padder := range []linkpad.SizePadder{linkpad.NoSizePad(), bucket, constant} {
		res, err := linkpad.DetectBySize(labels, profiles, padder, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %10.3f %22.2f %16.2f\n",
			padder.Name(), res.DetectionRate,
			linkpad.SizeOverhead(interactive, padder),
			linkpad.SizeOverhead(bulk, padder))
	}
	fmt.Println()
	fmt.Println("Constant-size padding reduces the adversary to guessing (0.5),")
	fmt.Println("at ~8.4x bytes for the interactive profile — the price of making")
	fmt.Println("the main paper's constant-size assumption true.")
}
