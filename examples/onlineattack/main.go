// Onlineattack demonstrates the continuous-stream session API end to
// end: one padded timeline observed window by window, and the anytime
// (SPRT-style) adversary that accumulates evidence across consecutive
// windows until it is confident — so the security metric becomes *how
// long* a deployment survives observation, not just the detection rate
// at one fixed sample size.
//
// Run with: go run ./examples/onlineattack
package main

import (
	"context"
	"fmt"
	"log"

	"linkpad"
)

func main() {
	cfg := linkpad.DefaultLabConfig()
	sys, err := linkpad.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: a raw session. Unlike the i.i.d.-replica protocol, the
	// stream clock advances monotonically across windows — consecutive
	// windows are slices of one continuous padded timeline.
	sess, err := sys.NewSession(1, 42) // class 1 = 40 pps
	if err != nil {
		log.Fatal(err)
	}
	sess.WarmUp(100) // run the system past its cold-start transient
	fmt.Printf("continuous session of class %q, warm-up 100 packets (%.2f s of stream)\n",
		sys.Labels()[sess.Class()], sess.Now())
	const n = 1000
	for w := 0; w < 3; w++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += sess.Source().Next()
		}
		fmt.Printf("  window %d: mean PIAT %.4f ms, stream clock now %6.2f s (%d PIATs observed)\n",
			w+1, sum/n*1e3, sess.Now(), sess.Observed())
	}

	// Part 2: the anytime attack. The adversary trains on continuous
	// sessions, then watches fresh sessions and stops at 99% posterior
	// confidence. Against CIT the decision lands within a couple of
	// windows; VIT with a large sigma_T stretches it past the budget.
	fmt.Println()
	fmt.Printf("%-22s %10s %10s %12s %14s\n",
		"system", "detection", "decided", "windows/dec", "seconds/dec")
	for _, tc := range []struct {
		name   string
		sigmaT float64
	}{
		{"CIT (sigma_T = 0)", 0},
		{"VIT sigma_T = 30us", 30e-6},
		{"VIT sigma_T = 100us", 100e-6},
	} {
		c := cfg
		c.SigmaT = tc.sigmaT
		s, err := linkpad.NewSystem(c)
		if err != nil {
			log.Fatal(err)
		}
		sc, err := s.Build(linkpad.SessionAttackSpec{Session: linkpad.SessionAttackConfig{
			Feature:      linkpad.FeatureEntropy,
			WindowSize:   n,
			TrainWindows: 120,
			EvalSessions: 40,
			MaxWindows:   10,
			Confidence:   0.99,
		}})
		if err != nil {
			log.Fatal(err)
		}
		out, err := sc.Run(context.Background(), linkpad.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		res := out.Session
		fmt.Printf("%-22s %10.3f %9.0f%% %12.2f %14.2f\n",
			tc.name, res.DetectionRate, res.DecidedRate*100,
			res.MeanWindowsToDecision, res.MeanTimeToDecision)
	}

	fmt.Println()
	fmt.Println("Reading: against CIT the online adversary is confident after ~1-2")
	fmt.Println("windows (tens of seconds of traffic); adding timer variance stretches")
	fmt.Println("the time to detection and finally starves the decision entirely.")
}
