// WAN attack: reproduces the paper's §5.3 wide-area result end to end.
// The padded stream crosses 15 routers with diurnally varying crossover
// traffic (Ohio State → Texas A&M in the paper); the adversary taps just
// in front of the receiver gateway. Daytime congestion masks the leak,
// but at 2 AM the network is quiet and CIT padding is again detectable —
// the paper's argument that CIT is unsafe even against a remote adversary.
//
// Run with: go run ./examples/wanattack
package main

import (
	"context"
	"fmt"
	"log"

	"linkpad"
	"linkpad/internal/traffic"
)

func wanConfig(startHour float64, seed uint64) linkpad.Config {
	cfg := linkpad.DefaultLabConfig()
	cfg.StartHour = startHour
	cfg.Seed = seed
	for i := 0; i < 15; i++ {
		cfg.Hops = append(cfg.Hops, linkpad.HopSpec{
			CapacityBps: 622e6, // OC-12 backbone links
			PacketBytes: 1500,
			Util:        traffic.Diurnal{Trough: 0.05, Peak: 0.30, TroughHour: 3},
			PropDelay:   2e-3,
		})
	}
	return cfg
}

func main() {
	fmt.Println("CIT padding across a 15-router WAN; adversary at the receiver side")
	fmt.Println()
	fmt.Printf("%-12s %10s %10s %10s\n", "time of day", "mean", "variance", "entropy")
	for _, hour := range []float64{2, 8, 14, 20} {
		sys, err := linkpad.NewSystem(wanConfig(hour, 42))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9.0f:00", hour)
		// One scenario per hour measures all three features on the same
		// simulated windows.
		sc, err := sys.Build(linkpad.AttackSetSpec{
			Attack: linkpad.AttackConfig{
				WindowSize:   1000,
				TrainWindows: 150,
				EvalWindows:  150,
			},
			Features: []linkpad.Feature{
				linkpad.FeatureMean, linkpad.FeatureVariance, linkpad.FeatureEntropy,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		out, err := sc.Run(context.Background(), linkpad.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		for _, res := range out.AttackSet {
			fmt.Printf(" %10.3f", res.DetectionRate)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Expected shape (paper Fig. 8b): entropy/variance detection well above")
	fmt.Println("guessing at 2:00 (quiet network) and depressed toward 0.5 mid-day.")
}
