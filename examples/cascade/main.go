// Cascade demonstrates the multi-hop route engine end to end: sixteen
// flows cross routes of increasing length, each hop re-padding the
// traffic with its own timer, and a global passive adversary taps every
// route's entry and exit, matching exit flows to entry flows by
// throughput-fingerprint correlation plus the paper's PIAT class
// features. One padded hop hides the individual inside the rate class;
// the second hop hides the class too — at the price of another full-rate
// padded link. Hop order matters: a batching mix in front of a timer hop
// leaks the class the other orderings protect.
//
// Run with: go run ./examples/cascade
package main

import (
	"context"
	"fmt"
	"log"

	"linkpad"
)

func main() {
	sys, err := linkpad.NewSystem(linkpad.DefaultLabConfig())
	if err != nil {
		log.Fatal(err)
	}
	features := []linkpad.Feature{linkpad.FeatureVariance, linkpad.FeatureEntropy}

	// Both sweeps run through the unified scenario API.
	run := func(spec linkpad.CascadeSpec, cfg linkpad.CascadeCorrConfig) *linkpad.CascadeResult {
		sc, err := sys.Build(linkpad.CascadeCorrelationSpec{Cascade: spec, Corr: cfg})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sc.Run(context.Background(), linkpad.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		return res.Cascade
	}

	// Part 1: route length. Every hop re-pads at 1/tau = 100 pps, so each
	// extra hop costs a full padded link and buys another layer of
	// re-timing between the adversary's two taps.
	fmt.Println("end-to-end correlation vs hop count: 16 flows, 60 s per flow")
	for _, hops := range []int{0, 1, 2, 3} {
		res := run(linkpad.CascadeSpec{
			Hops:  make([]linkpad.CascadeHop, hops),
			Flows: 16,
		}, linkpad.CascadeCorrConfig{Duration: 60, Features: features})
		fmt.Printf("  %d hops: %3.0f%% of flows matched, class identified for %3.0f%%, anonymity %.2f, %3.0f pps/flow\n",
			hops, 100*res.Accuracy, 100*res.ClassAccuracy, res.DegreeOfAnonymity, res.RoutePPS)
	}

	// Part 2: hop order. The same two stages — a CIT timer and a
	// batch-of-8 mix — protect the class in one order and leak it in the
	// other: the mix's payload-rate bursts drive the downstream timer's
	// blocking channel straight onto the exit wire.
	fmt.Println("hop order: the same stages, opposite leaks")
	for _, route := range []struct {
		name string
		hops []linkpad.CascadeHop
	}{
		{"CIT then MIX8", []linkpad.CascadeHop{{}, {Policy: linkpad.CascadeMix}}},
		{"MIX8 then CIT", []linkpad.CascadeHop{{Policy: linkpad.CascadeMix}, {}}},
	} {
		res := run(linkpad.CascadeSpec{
			Hops:  route.hops,
			Flows: 16,
		}, linkpad.CascadeCorrConfig{Duration: 60, Features: features})
		fmt.Printf("  %s: class identified for %3.0f%% (%3.0f pps/flow)\n",
			route.name, 100*res.ClassAccuracy, res.RoutePPS)
	}
	fmt.Println("put the timer hop first: it flattens the rate before anything else can echo it")
}
