// Multi-rate classification: the paper's §6 extension. Instead of two
// payload rates the adversary distinguishes four, training one feature
// density per rate — "our technique can be easily extended to multiple
// ones by performing more off-line training". The confusion matrix shows
// where neighbouring rates blur.
//
// Run with: go run ./examples/multirate
package main

import (
	"context"
	"fmt"
	"log"

	"linkpad"
)

func main() {
	cfg := linkpad.DefaultLabConfig()
	cfg.Rates = []linkpad.Rate{
		{Label: "10pps", PPS: 10},
		{Label: "20pps", PPS: 20},
		{Label: "40pps", PPS: 40},
		{Label: "80pps", PPS: 80},
	}
	sys, err := linkpad.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := sys.Build(linkpad.AttackSetSpec{
		Attack: linkpad.AttackConfig{
			WindowSize:   1000,
			TrainWindows: 150,
			EvalWindows:  150,
		},
		Features: []linkpad.Feature{linkpad.FeatureEntropy},
	})
	if err != nil {
		log.Fatal(err)
	}
	out, err := sc.Run(context.Background(), linkpad.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res := out.AttackSet[0]
	fmt.Println("Four payload rates, CIT padding, entropy feature, n = 1000")
	fmt.Println()
	fmt.Println(res.Confusion.String())
	fmt.Println()
	fmt.Printf("guessing bound for m=4 classes: 0.25; measured: %.3f\n", res.DetectionRate)
	fmt.Println("Higher rates perturb the padding timer more, so adjacent high rates")
	fmt.Println("separate more cleanly than adjacent low rates.")
}
