// Activeattack demonstrates the active-adversary engine end to end: an
// attacker with a vantage point on the payload side of the padded link
// injects a keyed chaff watermark — attacker-minted packets in a secret
// on/off pattern — into sixteen flows and runs a matched-filter
// detector at the exit tap, trying to recognize each flow's key through
// the countermeasure. An unpadded link forwards the rate pattern
// outright; a CIT timer flattens the wire rate but still leaks the
// pattern through its blocking jitter; and a second re-padding hop
// destroys the watermark, because the inner timer only ever sees the
// entry hop's constant rate.
//
// Run with: go run ./examples/activeattack
package main

import (
	"context"
	"fmt"
	"log"

	"linkpad"
)

func main() {
	sys, err := linkpad.NewSystem(linkpad.DefaultLabConfig())
	if err != nil {
		log.Fatal(err)
	}
	features := []linkpad.Feature{linkpad.FeatureVariance, linkpad.FeatureEntropy}

	// Both watermark sweeps run through the unified scenario API.
	run := func(spec linkpad.ActiveSpec, cfg linkpad.ActiveDetectConfig) *linkpad.ActiveResult {
		sc, err := sys.Build(linkpad.ActiveDetectionSpec{Active: spec, Detect: cfg})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sc.Run(context.Background(), linkpad.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		return res.Active
	}

	// Part 1: the chaff watermark vs the countermeasure tiers. Amplitude
	// is the in-slot chaff rate; the attacker's long-run cost is about
	// half that (the key's duty cycle).
	fmt.Println("chaff watermark (20 pps in marked slots) vs countermeasure: 16 flows, 45 s per flow")
	for _, tier := range []struct {
		name string
		spec linkpad.ActiveSpec
	}{
		{"unpadded", linkpad.ActiveSpec{Raw: true}},
		{"CIT timer", linkpad.ActiveSpec{}},
		{"2xCIT cascade", linkpad.ActiveSpec{
			Protocol: linkpad.ActiveCascade,
			Hops:     []linkpad.CascadeHop{{}, {}},
		}},
	} {
		spec := tier.spec
		spec.Flows = 16
		spec.Mode = linkpad.WatermarkChaff
		spec.Amplitude = 20
		res := run(spec, linkpad.ActiveDetectConfig{
			Duration: 45,
			Features: features,
		})
		fmt.Printf("  %-13s: %3.0f%% of keys detected (mean z %4.1f), %3.0f%% of flows matched, anonymity %.2f, attacker pays %4.1f pps, defense %3.0f pps\n",
			tier.name, 100*res.DetectionRate, res.MeanZ, 100*res.MatchAccuracy,
			res.DegreeOfAnonymity, res.InjectedPPS, res.RoutePPS)
	}

	// Part 2: the delay-jitter watermark dies at the first re-timing hop:
	// the timer re-schedules every departure, so a 100 ms imprint on the
	// payload arrivals never reaches the exit wire.
	fmt.Println("delay watermark (100 ms on marked-slot payload): injection costs latency, not packets")
	for _, tier := range []struct {
		name string
		raw  bool
	}{
		{"unpadded", true},
		{"CIT timer", false},
	} {
		res := run(linkpad.ActiveSpec{
			Flows:     16,
			Mode:      linkpad.WatermarkDelay,
			Amplitude: 0.1,
			Raw:       tier.raw,
		}, linkpad.ActiveDetectConfig{Duration: 45, Features: features})
		fmt.Printf("  %-9s: %3.0f%% of keys detected, mean added delay %2.0f ms\n",
			tier.name, 100*res.DetectionRate, 1e3*res.MeanAddedDelay)
	}
	fmt.Println("re-timing is the active countermeasure: every padded hop between the taps resets the attacker's clock")
}
