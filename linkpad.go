// Package linkpad is a reproduction, as a reusable Go library, of
// "Analytical and Empirical Analysis of Countermeasures to Traffic
// Analysis Attacks" (Fu, Graham, Bettati, Zhao, Xuan — ICPP 2003).
//
// The library models a complete link-padding deployment: payload traffic
// entering a sender security gateway whose timer (constant-interval CIT or
// variable-interval VIT) emits one encrypted constant-size packet per
// fire — payload if queued, dummy otherwise — plus the unprotected router
// path an adversary can tap. The adversary applies the paper's statistical
// attack: sample mean, sample variance, or sample entropy of packet
// inter-arrival times, classified with Bayes rules trained on Gaussian
// kernel density estimates. The security metric throughout is the
// detection rate: the probability the adversary correctly identifies the
// payload rate.
//
// Three layers are exposed:
//
//   - System / Config: declaratively describe a deployment and run
//     simulated attacks against it through the unified scenario API
//     (System.Build a Spec into a Scenario, Scenario.Run under shared
//     RunOptions) — the replica-window attack (AttackSetSpec), the
//     continuous-stream session attack (SessionAttackSpec), statistical
//     disclosure (DisclosureSpec), flow correlation against populations
//     and cascades (FlowCorrelationSpec, CascadeCorrelationSpec), and
//     the active watermark attack (ActiveDetectionSpec) — predict
//     detection rates with the paper's closed-form theorems
//     (TheoreticalDetectionRate), and solve the design problem of
//     choosing σ_T (DesignVIT, CalibrateVIT).
//   - Features and theorems: the analytic detection-rate formulas are
//     re-exported (DetectionRateMean/Variance/Entropy, SampleSize*).
//   - Experiments: RunExperiment regenerates every figure of the paper's
//     evaluation section by name (see ExperimentNames).
//
// The package root is a facade over the internal implementation packages;
// see DESIGN.md for the system inventory and EXPERIMENTS.md for recorded
// paper-vs-measured results.
package linkpad

import (
	"linkpad/internal/active"
	"linkpad/internal/analytic"
	"linkpad/internal/cascade"
	"linkpad/internal/core"
	"linkpad/internal/experiment"
	"linkpad/internal/population"
	"linkpad/internal/sizes"
)

// Version identifies this release of the reproduction.
const Version = "1.0.0"

// System assembly (see internal/core).
type (
	// System is a validated link-padding deployment description.
	System = core.System
	// Config describes a deployment: timer policy, gateway jitter model,
	// payload rate hypotheses, router path, and tap imperfections.
	Config = core.Config
	// Rate is one payload-rate hypothesis.
	Rate = core.Rate
	// HopSpec describes one router of the unprotected path.
	HopSpec = core.HopSpec
	// PayloadModel selects the payload arrival process.
	PayloadModel = core.PayloadModel
	// AttackConfig parameterizes a simulated adversary.
	AttackConfig = core.AttackConfig
	// AttackResult reports a simulated attack: measured detection rate,
	// confusion matrix, and the closed-form prediction at the measured
	// variance ratio.
	AttackResult = core.AttackResult
	// Session is one continuous observation of a class: consecutive
	// windows share carried stream state, implementing the paper's
	// sequential-observation threat model (System.NewSession).
	Session = core.Session
	// SessionAttackConfig parameterizes the continuous-stream attack with
	// anytime (SPRT-style) decisions (System.RunAttackSession).
	SessionAttackConfig = core.SessionAttackConfig
	// SessionAttacker is a trained continuous-stream adversary
	// (System.TrainSessionAttack) whose Evaluate runs the anytime attack
	// under different run-time knobs without retraining.
	SessionAttacker = core.SessionAttacker
	// SessionAttackResult reports a continuous-stream attack: detection
	// rate of the anytime decisions, decision coverage, and
	// time-to-detection statistics.
	SessionAttackResult = core.SessionAttackResult
)

// Payload models.
const (
	PayloadPoisson = core.PayloadPoisson
	PayloadCBR     = core.PayloadCBR
	PayloadOnOff   = core.PayloadOnOff
)

// Unified scenario API (see internal/core): every observation protocol
// is reachable through one shape. System.Build validates a Spec into a
// runnable Scenario; Scenario.Run executes it under the shared
// RunOptions (worker width, master seed, observation-budget scale,
// telemetry probe, checkpoint resume) and returns the ScenarioResult
// union. The per-protocol System.Run* methods remain as deprecated
// wrappers over this path.
type (
	// Spec describes one scenario: a protocol plus its parameters. The
	// six spec types below are the complete (sealed) set.
	Spec = core.Spec
	// Scenario is a validated, system-bound attack ready to run.
	Scenario = core.Scenario
	// RunOptions are the execution knobs shared by every scenario.
	RunOptions = core.RunOptions
	// ScenarioResult is the outcome union of one scenario run: exactly
	// one field is non-nil, matching the spec the scenario was built
	// from.
	ScenarioResult = core.Result
	// AttackSetSpec is the replica-window attack for one or more feature
	// statistics.
	AttackSetSpec = core.AttackSetSpec
	// SessionAttackSpec is the continuous-stream attack with anytime
	// decisions.
	SessionAttackSpec = core.SessionAttackSpec
	// DisclosureSpec is the round-based statistical disclosure attack
	// against a user population.
	DisclosureSpec = core.DisclosureSpec
	// FlowCorrelationSpec is the per-flow correlation attack against a
	// user population.
	FlowCorrelationSpec = core.FlowCorrelationSpec
	// CascadeCorrelationSpec is the end-to-end correlation attack
	// against a multi-hop cascade.
	CascadeCorrelationSpec = core.CascadeCorrelationSpec
	// ActiveDetectionSpec is the active watermark attack.
	ActiveDetectionSpec = core.ActiveDetectionSpec
)

// NewSystem validates cfg and returns a System.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// DefaultLabConfig returns the paper's §5 baseline configuration: CIT
// padding with τ = 10 ms, payload at 10 or 40 pps with equal priors, and
// the adversary tapping the sender gateway's output.
func DefaultLabConfig() Config { return core.DefaultLabConfig() }

// Feature identifies the adversary's statistic.
type Feature = analytic.Feature

// The three feature statistics studied by the paper, plus the
// interquartile-range extension (empirical only; no closed-form theorem).
const (
	FeatureMean     = analytic.FeatureMean
	FeatureVariance = analytic.FeatureVariance
	FeatureEntropy  = analytic.FeatureEntropy
	FeatureIQR      = analytic.FeatureIQR
)

// DetectionRateMean returns Theorem 1's detection rate for the
// sample-mean feature at PIAT variance ratio r (independent of sample
// size; exactly 0.5 at r = 1).
func DetectionRateMean(r float64) (float64, error) {
	return analytic.DetectionRateMean(r)
}

// DetectionRateVariance returns Theorem 2's detection rate for the
// sample-variance feature at variance ratio r and sample size n.
func DetectionRateVariance(r float64, n int) (float64, error) {
	return analytic.DetectionRateVariance(r, n)
}

// DetectionRateEntropy returns Theorem 3's detection rate for the
// sample-entropy feature at variance ratio r and sample size n.
func DetectionRateEntropy(r float64, n int) (float64, error) {
	return analytic.DetectionRateEntropy(r, n)
}

// SampleSizeVariance returns the sample size needed for the variance
// feature to reach detection rate p at variance ratio r (the paper's
// Fig. 5b curve; +Inf at r = 1).
func SampleSizeVariance(r, p float64) (float64, error) {
	return analytic.SampleSizeVariance(r, p)
}

// SampleSizeEntropy returns the sample size needed for the entropy
// feature to reach detection rate p at variance ratio r.
func SampleSizeEntropy(r, p float64) (float64, error) {
	return analytic.SampleSizeEntropy(r, p)
}

// Population scale (see internal/population): N senders share the padded
// infrastructure and a global passive adversary runs the canonical
// population attacks — round-based statistical disclosure against the
// batching mix (System.RunDisclosure) and per-flow throughput-fingerprint
// correlation against padded links (System.RunFlowCorrelation).
type (
	// PopulationSpec describes the user population: size, rate-class
	// mix, recipient profiles, and cover traffic.
	PopulationSpec = core.PopulationSpec
	// PopulationEngine is the running multi-user simulation
	// (System.NewPopulation) emitting threshold-mix rounds.
	PopulationEngine = population.Engine
	// DisclosureConfig parameterizes the statistical disclosure attack:
	// batch, mix policy, estimator, targets, budget.
	DisclosureConfig = population.DisclosureConfig
	// MixPolicySpec configures the disclosure run's round-forming mix
	// policy (DisclosureConfig.Mix): threshold, pool or timed.
	MixPolicySpec = population.MixSpec
	// MixPolicyKind selects the mix's batching discipline.
	MixPolicyKind = population.MixKind
	// EstimatorKind selects the disclosure estimator (classic
	// round-contrast, least-squares, or iterative ML).
	EstimatorKind = population.EstimatorKind
	// DummyPolicy selects how the population addresses its cover
	// messages (PopulationSpec.Dummies): none, uniform receiver-bound,
	// or adaptive suspect-targeting.
	DummyPolicy = population.DummyPolicy
	// DisclosureResult reports rounds-to-disclosure and the targets'
	// residual degree of anonymity.
	DisclosureResult = population.DisclosureResult
	// DisclosureState is a serializable mid-run disclosure checkpoint
	// (DisclosureRun.Snapshot), resumable through RunOptions.Resume or
	// PopulationEngine.ResumeDisclosure.
	DisclosureState = population.DisclosureState
	// FlowCorrConfig parameterizes the per-flow correlation attack.
	FlowCorrConfig = core.FlowCorrConfig
	// FlowCorrResult reports the flow-matching accuracy, class accuracy
	// and throughput-fingerprint strength.
	FlowCorrResult = population.FlowCorrResult
)

// The SDA arms race's three axes (DisclosureConfig.Mix/.Estimator and
// PopulationSpec.Dummies). Zero values reproduce the original attack:
// threshold mix, classic estimator, no dummy policy.
const (
	MixThreshold = population.MixThreshold
	MixPool      = population.MixPool
	MixTimed     = population.MixTimed

	EstimatorClassic      = population.EstimatorClassic
	EstimatorLeastSquares = population.EstimatorLeastSquares
	EstimatorML           = population.EstimatorML

	DummyNone     = population.DummyNone
	DummyUniform  = population.DummyUniform
	DummyAdaptive = population.DummyAdaptive
)

// Multi-hop cascades (see internal/cascade): a route of K padded hops —
// each composing its own timer policy or batching mix, host jitter, and
// outgoing link — observed end to end by an adversary who taps both the
// route's entry and its exit (System.NewCascade,
// System.RunCascadeCorrelation).
type (
	// CascadeSpec describes a multi-hop route topology: per-hop padding
	// stages plus the concurrent end-to-end flows.
	CascadeSpec = core.CascadeSpec
	// CascadeHop describes one padded hop of a route.
	CascadeHop = core.CascadeHop
	// CascadePolicy selects a hop's padding stage (CIT, VIT or mix).
	CascadePolicy = core.CascadePolicy
	// CascadeEngine is the instantiated route engine
	// (System.NewCascade), handing out per-flow route observations.
	CascadeEngine = cascade.Engine
	// CascadeCorrConfig parameterizes the end-to-end correlation attack.
	CascadeCorrConfig = core.CascadeCorrConfig
	// CascadeResult reports the end-to-end attack: matching accuracy,
	// exit class accuracy, degree of anonymity, and the per-hop
	// matched-overhead accounting.
	CascadeResult = cascade.Result
)

// Cascade hop policies.
const (
	CascadeCIT = core.CascadeCIT
	CascadeVIT = core.CascadeVIT
	CascadeMix = core.CascadeMix
)

// Active adversary (see internal/active): an attacker with a vantage
// point on the payload side of the countermeasure injects a keyed
// watermark — delay jitter or chaff probes — into each flow before the
// padding and runs a matched-filter detector at the exit tap
// (System.RunActiveDetection). The scenario crosses any of the four
// observation protocols, so one study compares every countermeasure
// against the same active attack at matched overhead.
type (
	// ActiveSpec describes an active-adversary scenario: who is
	// watermarked, by which mechanism and amplitude, and which
	// observation protocol the flows cross.
	ActiveSpec = core.ActiveSpec
	// ActiveProtocol selects the observation protocol of an active
	// scenario (replica, session, population or cascade).
	ActiveProtocol = core.ActiveProtocol
	// ActiveDetectConfig parameterizes the watermark detection attack.
	ActiveDetectConfig = core.ActiveDetectConfig
	// ActiveEngine is the instantiated watermark engine
	// (System.NewActive), handing out per-flow watermarked observations.
	ActiveEngine = active.Engine
	// ActiveResult reports a watermark detection run: detection rate,
	// key-match accuracy, degree of anonymity, exit class accuracy, and
	// both sides' overhead accounting.
	ActiveResult = active.Result
	// WatermarkMode selects the injection mechanism (delay or chaff).
	WatermarkMode = active.Mode
	// WatermarkKey is a keyed ±1 chip schedule driving an injection.
	WatermarkKey = active.Key
)

// Active-adversary protocols and watermark modes.
const (
	ActiveReplica    = core.ActiveReplica
	ActiveSession    = core.ActiveSession
	ActivePopulation = core.ActivePopulation
	ActiveCascade    = core.ActiveCascade

	WatermarkDelay = active.ModeDelay
	WatermarkChaff = active.ModeChaff
)

// Experiment tables (see internal/experiment).
type (
	// ExperimentTable is one experiment's result series.
	ExperimentTable = experiment.Table
	// ExperimentOptions control Monte Carlo effort and seeding.
	ExperimentOptions = experiment.Options
)

// RunExperiment regenerates one of the paper's figures by ID (e.g.
// "fig4b"); see ExperimentNames for the full set.
func RunExperiment(id string, o ExperimentOptions) (*ExperimentTable, error) {
	return experiment.Run(id, o)
}

// ExperimentNames lists every reproducible figure and extension study.
func ExperimentNames() []string { return experiment.Names() }

// Packet-size camouflage (the paper's variable-size extension, ref. [7];
// see internal/sizes).
type (
	// AdaptiveSpec configures the Timmerman adaptive-masking baseline.
	AdaptiveSpec = core.AdaptiveSpec
	// MixSpec configures the Chaum batch-of-K baseline.
	MixSpec = core.MixSpec
	// SizeProfile is an application packet-size distribution.
	SizeProfile = sizes.Profile
	// SizePadder maps raw packet sizes to wire sizes.
	SizePadder = sizes.Padder
	// SizeAttackConfig parameterizes the size-classification attack.
	SizeAttackConfig = sizes.AttackConfig
	// SizeAttackResult reports a size-classification attack.
	SizeAttackResult = sizes.Result
)

// NewSizeProfile creates a packet-size distribution.
func NewSizeProfile(szs []int, probs []float64) (*SizeProfile, error) {
	return sizes.NewProfile(szs, probs)
}

// NoSizePad transmits raw packet sizes: the insecure baseline.
func NoSizePad() SizePadder { return sizes.NoPad{} }

// NewConstantSizePad pads every packet to a fixed wire size — exact size
// secrecy at a byte cost.
func NewConstantSizePad(target int) (SizePadder, error) {
	return sizes.NewConstantPad(target)
}

// NewBucketSizePad rounds packets up to bucket boundaries.
func NewBucketSizePad(buckets []int) (SizePadder, error) {
	return sizes.NewBucketPad(buckets)
}

// SizeOverhead returns the byte inflation of a padding scheme on a
// profile.
func SizeOverhead(p *SizeProfile, pd SizePadder) float64 {
	return sizes.Overhead(p, pd)
}

// DetectBySize runs the size-classification attack against padded
// application profiles.
func DetectBySize(labels []string, profiles []*SizeProfile, pd SizePadder, cfg SizeAttackConfig) (*SizeAttackResult, error) {
	return sizes.Detect(labels, profiles, pd, cfg)
}
