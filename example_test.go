package linkpad_test

import (
	"context"
	"fmt"
	"log"

	"linkpad"
)

// Theorem 1: the sample-mean feature's detection rate depends only on the
// PIAT variance ratio r — exactly 0.5 (guessing) when the padding hides
// the rate (r = 1), and barely better at the calibrated CIT gateway's
// r ≈ 1.9.
func ExampleDetectionRateMean() {
	v1, err := linkpad.DetectionRateMean(1.0)
	if err != nil {
		log.Fatal(err)
	}
	v2, err := linkpad.DetectionRateMean(1.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.3f %.3f\n", v1, v2)
	// Output: 0.500 0.577
}

// Fig. 5(b)'s quantity: how many PIATs the adversary must capture for a
// 99% detection rate with the sample-variance feature. At the CIT
// gateway's r ≈ 1.9 roughly a thousand suffice — which is why CIT fails.
func ExampleSampleSizeVariance() {
	n, err := linkpad.SampleSizeVariance(1.9, 0.99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.0f\n", n)
	// Output: 1005
}

// Build the paper's laboratory system and run the entropy-feature attack:
// CIT padding is identified essentially always at n = 1000, and the
// measured variance ratio matches the calibration (r ≈ 1.9).
func ExampleNewSystem() {
	sys, err := linkpad.NewSystem(linkpad.DefaultLabConfig())
	if err != nil {
		log.Fatal(err)
	}
	sc, err := sys.Build(linkpad.AttackSetSpec{
		Attack: linkpad.AttackConfig{
			WindowSize:   1000,
			TrainWindows: 100,
			EvalWindows:  100,
		},
		Features: []linkpad.Feature{linkpad.FeatureEntropy},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sc.Run(context.Background(), linkpad.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detection %.2f at r=%.2f\n",
		res.AttackSet[0].DetectionRate, res.AttackSet[0].EmpiricalR)
	// Output: detection 1.00 at r=1.89
}

// The design guideline: the smallest VIT σ_T (per Theorem 3) that caps an
// entropy-feature adversary at 60% detection with samples of 1000 PIATs.
func ExampleSystem_DesignVIT() {
	sys, err := linkpad.NewSystem(linkpad.DefaultLabConfig())
	if err != nil {
		log.Fatal(err)
	}
	sigmaT, err := sys.DesignVIT(linkpad.FeatureEntropy, 0.6, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sigma_T = %.1f us\n", sigmaT*1e6)
	// Output: sigma_T = 14.0 us
}

// The session protocol: one continuous padded stream per class, observed
// in consecutive windows with an anytime (SPRT-style) stop. The CIT
// gateway is identified at 99% confidence after about one 1000-PIAT
// window — roughly ten seconds of stream.
func ExampleSystem_Build_session() {
	sys, err := linkpad.NewSystem(linkpad.DefaultLabConfig())
	if err != nil {
		log.Fatal(err)
	}
	sc, err := sys.Build(linkpad.SessionAttackSpec{Session: linkpad.SessionAttackConfig{
		Feature:       linkpad.FeatureEntropy,
		WindowSize:    1000,
		TrainSessions: 4,
		TrainWindows:  100,
		EvalSessions:  50,
		MaxWindows:    8,
		Confidence:    0.99,
	}})
	if err != nil {
		log.Fatal(err)
	}
	out, err := sc.Run(context.Background(), linkpad.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res := out.Session
	fmt.Printf("detection %.2f, %.1f windows to decision\n",
		res.DetectionRate, res.MeanWindowsToDecision)
	// Output: detection 1.00, 1.0 windows to decision
}

// The population protocol: many users share the batching mix, and a
// global passive adversary runs round-based statistical disclosure
// against one target's contact set. Every protocol runs through the
// same two calls — Build a Spec, Run the Scenario.
func ExampleSystem_Build() {
	sys, err := linkpad.NewSystem(linkpad.DefaultLabConfig())
	if err != nil {
		log.Fatal(err)
	}
	sc, err := sys.Build(linkpad.DisclosureSpec{
		Population: linkpad.PopulationSpec{
			Users:      16,
			Recipients: 32,
		},
		Disclosure: linkpad.DisclosureConfig{
			Targets:   []int{0},
			MaxRounds: 2000,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	out, err := sc.Run(context.Background(), linkpad.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res := out.Disclosure
	fmt.Printf("disclosed %.0f%% of targets after %.0f rounds\n",
		100*res.DisclosedFrac, res.MeanRounds)
	// Output: disclosed 100% of targets after 475 rounds
}

// The cascade protocol: flows cross a route of re-padding hops and the
// adversary taps both ends. Two CIT hops break the end-to-end match —
// the inner hop only ever sees the entry hop's constant rate.
func ExampleSystem_Build_cascade() {
	sys, err := linkpad.NewSystem(linkpad.DefaultLabConfig())
	if err != nil {
		log.Fatal(err)
	}
	sc, err := sys.Build(linkpad.CascadeCorrelationSpec{
		Cascade: linkpad.CascadeSpec{
			Hops:  []linkpad.CascadeHop{{}, {}},
			Flows: 8,
		},
		Corr: linkpad.CascadeCorrConfig{Duration: 30},
	})
	if err != nil {
		log.Fatal(err)
	}
	out, err := sc.Run(context.Background(), linkpad.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res := out.Cascade
	fmt.Printf("matched %.0f%% of flows, anonymity %.2f\n",
		100*res.Accuracy, res.DegreeOfAnonymity)
	// Output: matched 0% of flows, anonymity 0.56
}

// The active adversary: keyed chaff probes injected into each flow's
// payload before the CIT gateway, detected again at the exit tap with a
// matched filter. The timer flattens the wire rate, but the chaff still
// leaks through its blocking jitter.
func ExampleSystem_Build_active() {
	sys, err := linkpad.NewSystem(linkpad.DefaultLabConfig())
	if err != nil {
		log.Fatal(err)
	}
	sc, err := sys.Build(linkpad.ActiveDetectionSpec{
		Active: linkpad.ActiveSpec{
			Flows:     8,
			Mode:      linkpad.WatermarkChaff,
			Amplitude: 40,
		},
		Detect: linkpad.ActiveDetectConfig{Duration: 45},
	})
	if err != nil {
		log.Fatal(err)
	}
	out, err := sc.Run(context.Background(), linkpad.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res := out.Active
	fmt.Printf("detected %.0f%% of keys at %.1f pps injected\n",
		100*res.DetectionRate, res.InjectedPPS)
	// Output: detected 100% of keys at 19.7 pps injected
}
