package linkpad_test

import (
	"fmt"
	"log"

	"linkpad"
)

// Theorem 1: the sample-mean feature's detection rate depends only on the
// PIAT variance ratio r — exactly 0.5 (guessing) when the padding hides
// the rate (r = 1), and barely better at the calibrated CIT gateway's
// r ≈ 1.9.
func ExampleDetectionRateMean() {
	v1, err := linkpad.DetectionRateMean(1.0)
	if err != nil {
		log.Fatal(err)
	}
	v2, err := linkpad.DetectionRateMean(1.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.3f %.3f\n", v1, v2)
	// Output: 0.500 0.577
}

// Fig. 5(b)'s quantity: how many PIATs the adversary must capture for a
// 99% detection rate with the sample-variance feature. At the CIT
// gateway's r ≈ 1.9 roughly a thousand suffice — which is why CIT fails.
func ExampleSampleSizeVariance() {
	n, err := linkpad.SampleSizeVariance(1.9, 0.99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.0f\n", n)
	// Output: 1005
}

// Build the paper's laboratory system and run the entropy-feature attack:
// CIT padding is identified essentially always at n = 1000, and the
// measured variance ratio matches the calibration (r ≈ 1.9).
func ExampleNewSystem() {
	sys, err := linkpad.NewSystem(linkpad.DefaultLabConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.RunAttack(linkpad.AttackConfig{
		Feature:      linkpad.FeatureEntropy,
		WindowSize:   1000,
		TrainWindows: 100,
		EvalWindows:  100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detection %.2f at r=%.2f\n", res.DetectionRate, res.EmpiricalR)
	// Output: detection 1.00 at r=1.89
}

// The design guideline: the smallest VIT σ_T (per Theorem 3) that caps an
// entropy-feature adversary at 60% detection with samples of 1000 PIATs.
func ExampleSystem_DesignVIT() {
	sys, err := linkpad.NewSystem(linkpad.DefaultLabConfig())
	if err != nil {
		log.Fatal(err)
	}
	sigmaT, err := sys.DesignVIT(linkpad.FeatureEntropy, 0.6, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sigma_T = %.1f us\n", sigmaT*1e6)
	// Output: sigma_T = 14.0 us
}
