package linkpad_test

import (
	"context"
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"

	"linkpad"
	"linkpad/internal/core"
)

// facade_test.go: the facade-completeness property. The root package is
// a facade over internal/core's scenario API; this test parses core's
// sources for the sealed Spec set (every receiver of a scenarioSpec
// method) and fails when a spec type exists in core without a root-level
// alias — so adding a seventh protocol without surfacing it breaks CI,
// not a downstream user. The reflect half then verifies each surfaced
// alias really is core's type (field-for-field), so the facade can never
// drift into a stale copy that hides newly added spec or option fields.

// facadeSpecTypes maps every core spec type name to its facade alias.
// A new entry is required whenever core gains a Spec implementation —
// the parser check below enforces exactly that.
var facadeSpecTypes = map[string]reflect.Type{
	"AttackSetSpec":          reflect.TypeOf(linkpad.AttackSetSpec{}),
	"SessionAttackSpec":      reflect.TypeOf(linkpad.SessionAttackSpec{}),
	"DisclosureSpec":         reflect.TypeOf(linkpad.DisclosureSpec{}),
	"FlowCorrelationSpec":    reflect.TypeOf(linkpad.FlowCorrelationSpec{}),
	"CascadeCorrelationSpec": reflect.TypeOf(linkpad.CascadeCorrelationSpec{}),
	"ActiveDetectionSpec":    reflect.TypeOf(linkpad.ActiveDetectionSpec{}),
}

// coreSpecTypeNames parses internal/core and returns the receiver type
// name of every scenarioSpec method — the authoritative sealed Spec set.
func coreSpecTypeNames(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, "internal/core", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Name.Name != "scenarioSpec" || fn.Recv == nil || len(fn.Recv.List) != 1 {
					continue
				}
				recv := fn.Recv.List[0].Type
				if star, ok := recv.(*ast.StarExpr); ok {
					recv = star.X
				}
				if id, ok := recv.(*ast.Ident); ok {
					names = append(names, id.Name)
				}
			}
		}
	}
	if len(names) == 0 {
		t.Fatal("no scenarioSpec receivers found in internal/core; did the Spec seal move?")
	}
	return names
}

func TestFacadeSurfacesEverySpecType(t *testing.T) {
	for _, name := range coreSpecTypeNames(t) {
		alias, ok := facadeSpecTypes[name]
		if !ok {
			t.Errorf("core spec type %s has no facade alias in the root package; "+
				"add `%s = core.%s` to linkpad.go and to facadeSpecTypes", name, name, name)
			continue
		}
		if alias.PkgPath() != "linkpad/internal/core" || alias.Name() != name {
			t.Errorf("facade %s aliases %s.%s, want core.%s",
				name, alias.PkgPath(), alias.Name(), name)
		}
	}
}

// TestFacadeScenarioShapes: the run-option and result shapes the specs
// feed into must alias core's — a field added to core.RunOptions or
// core.Result is immediately visible through the facade.
func TestFacadeScenarioShapes(t *testing.T) {
	pairs := []struct {
		name   string
		facade reflect.Type
		core   reflect.Type
	}{
		{"RunOptions", reflect.TypeOf(linkpad.RunOptions{}), reflect.TypeOf(core.RunOptions{})},
		{"ScenarioResult", reflect.TypeOf(linkpad.ScenarioResult{}), reflect.TypeOf(core.Result{})},
	}
	for _, p := range pairs {
		if p.facade != p.core {
			t.Errorf("facade %s is %v, want alias of %v", p.name, p.facade, p.core)
		}
		if p.facade.NumField() == 0 {
			t.Errorf("%s has no fields; the scenario shapes should not be empty", p.name)
		}
	}
	var sc linkpad.Scenario
	if _, ok := interface{}(&sc).(*core.Scenario); !ok {
		t.Error("linkpad.Scenario is not an alias of core.Scenario")
	}
}

// TestFacadeScenarioRuns: the scenario path works end to end from the
// root package alone.
func TestFacadeScenarioRuns(t *testing.T) {
	sys, err := linkpad.NewSystem(linkpad.DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sys.Build(linkpad.DisclosureSpec{
		Population: linkpad.PopulationSpec{Users: 16, Recipients: 40, CoverRate: 0.5},
		Disclosure: linkpad.DisclosureConfig{MaxRounds: 200, Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(context.Background(), linkpad.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Disclosure == nil || res.Disclosure.Rounds == 0 {
		t.Fatalf("facade scenario run returned %+v", res)
	}
}
