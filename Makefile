GO ?= go

.PHONY: all build vet test race bench bench-json bench-compare bench-gate \
	profile staticcheck docs golden golden-check resume-check scale-smoke \
	report ci clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full figure benchmarks (one iteration each) with allocation metrics.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -v

# Append a timing trajectory record for every experiment to BENCH.json.
bench-json:
	$(GO) run ./cmd/linkpadsim -exp all -scale 0.5 -bench-json BENCH.json

# Per-experiment wall-clock deltas between the last two comparable
# BENCH.json records (same scale/seed/workers).
bench-compare:
	$(GO) run ./cmd/linkpadsim -bench-compare BENCH.json

# Same diff, but fail if any experiment slowed down past 25% (baselines
# under 50 ms are exempt from the gate as pure scheduling noise). This is
# what the bench-trajectory CI job runs.
bench-gate:
	$(GO) run ./cmd/linkpadsim -bench-gate BENCH.json -bench-gate-pct 25

# Smoke-scale run of every experiment with the live progress line and a
# structured JSON run report (per-layer counters, packets/sec); the
# report-smoke CI job runs the same thing and checks worker invariance.
report:
	$(GO) run ./cmd/linkpadsim -exp all -scale $(GOLDEN_SCALE) -seed $(GOLDEN_SEED) \
		-progress -report report.json
	@echo "wrote report.json"

# CPU + heap profiles of the heaviest single experiment (the 15-hop WAN
# diurnal path of fig8b); inspect with `go tool pprof cpu.prof`.
PROFILE_EXP = fig8b
profile:
	$(GO) run ./cmd/linkpadsim -exp $(PROFILE_EXP) -scale 0.5 \
		-cpuprofile cpu.prof -memprofile mem.prof
	@echo "wrote cpu.prof and mem.prof; try: $(GO) tool pprof -top cpu.prof"

# Static analysis at the version CI pins (needs network for the first run).
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1 ./...

# Documentation gate: offline markdown link check (every relative link
# and #anchor in the core documents must resolve; cmd/docscheck) plus
# go vet's doc diagnostics over the tree.
docs:
	$(GO) run ./cmd/docscheck README.md DESIGN.md PAPER.md CHANGES.md
	$(GO) vet ./...

# The golden determinism gate: one small-scale experiment per observation
# protocol (replica, session, population, cascade, active), committed as
# text tables. golden-check regenerates them into a scratch directory and
# byte-diffs against the committed copies — the mechanical version of the
# "prior tables byte-identical" check every PR used to run by hand.
# After an *intentional* table change, run `make golden` and commit.
GOLDEN_SCALE = 0.05
GOLDEN_SEED = 3
GOLDEN_EXPS = fig4b ext-online ext-disclosure ext-cascade ext-active ext-sda-arms-race

golden:
	@for e in $(GOLDEN_EXPS); do \
		$(GO) run ./cmd/linkpadsim -exp $$e -scale $(GOLDEN_SCALE) -seed $(GOLDEN_SEED) -o testdata/golden || exit 1; \
	done

golden-check:
	@tmp=$$(mktemp -d) || exit 1; \
	for e in $(GOLDEN_EXPS); do \
		$(GO) run ./cmd/linkpadsim -exp $$e -scale $(GOLDEN_SCALE) -seed $(GOLDEN_SEED) -o $$tmp || { rm -rf $$tmp; exit 1; }; \
	done; \
	diff -ru testdata/golden $$tmp || { rm -rf $$tmp; \
		echo "golden tables differ: intentional? regenerate with 'make golden' and commit"; exit 1; }; \
	rm -rf $$tmp; echo "golden tables byte-identical"

# The resume-determinism gate: run the checkpointable population sweep,
# kill it mid-flight (simulated crash after 3 cells, exit code 3), resume
# from the checkpoint file, and byte-diff the finished table against the
# committed golden copy — a resumed run must be indistinguishable from
# one that never crashed.
resume-check:
	@tmp=$$(mktemp -d) || exit 1; \
	$(GO) build -o $$tmp/linkpadsim ./cmd/linkpadsim || { rm -rf $$tmp; exit 1; }; \
	$$tmp/linkpadsim -exp ext-disclosure -scale $(GOLDEN_SCALE) -seed $(GOLDEN_SEED) \
		-checkpoint $$tmp/cp.json -checkpoint-kill 3 -o $$tmp; \
	status=$$?; \
	if [ $$status -ne 3 ]; then rm -rf $$tmp; \
		echo "expected simulated-crash exit code 3, got $$status"; exit 1; fi; \
	[ -f $$tmp/cp.json ] || { rm -rf $$tmp; echo "no checkpoint file persisted"; exit 1; }; \
	$$tmp/linkpadsim -exp ext-disclosure -scale $(GOLDEN_SCALE) -seed $(GOLDEN_SEED) \
		-checkpoint $$tmp/cp.json -o $$tmp || { rm -rf $$tmp; exit 1; }; \
	diff testdata/golden/ext-disclosure.txt $$tmp/ext-disclosure.txt || { rm -rf $$tmp; \
		echo "resumed table differs from the uninterrupted golden"; exit 1; }; \
	rm -rf $$tmp; echo "kill-and-resume run byte-identical to golden"

# The scale gate: drive the sharded population engine at 1e5 users (a
# tenth of the million-user design point — big enough to exercise lazy
# instantiation, sparse estimators and the streaming shard merge; small
# enough for every CI run) at two worker widths and byte-diff the
# tables. -max-rss-mb pins the engine's memory model (peak resident set
# measured ~35 MiB; the ceiling leaves slack for GC scheduling, not for
# an O(N)-user-states regression) and -timeout turns a wedged run into
# a clean failure. `make scale` runs the full million-user point.
scale-smoke:
	@tmp=$$(mktemp -d) || exit 1; \
	$(GO) build -o $$tmp/linkpadsim ./cmd/linkpadsim || { rm -rf $$tmp; exit 1; }; \
	$$tmp/linkpadsim -exp scale-disclosure -scale 0.1 -seed 3 -workers 1 \
		-timeout 10m -max-rss-mb 512 -o $$tmp/w1 || { rm -rf $$tmp; exit 1; }; \
	$$tmp/linkpadsim -exp scale-disclosure -scale 0.1 -seed 3 -workers 4 \
		-timeout 10m -max-rss-mb 512 -o $$tmp/w4 || { rm -rf $$tmp; exit 1; }; \
	diff $$tmp/w1/scale-disclosure.txt $$tmp/w4/scale-disclosure.txt || { rm -rf $$tmp; \
		echo "scale-disclosure tables differ across -workers"; exit 1; }; \
	$$tmp/linkpadsim -exp scale-sda-ls -scale 0.1 -seed 3 -workers 1 \
		-timeout 10m -max-rss-mb 512 -o $$tmp/w1 || { rm -rf $$tmp; exit 1; }; \
	$$tmp/linkpadsim -exp scale-sda-ls -scale 0.1 -seed 3 -workers 4 \
		-timeout 10m -max-rss-mb 512 -o $$tmp/w4 || { rm -rf $$tmp; exit 1; }; \
	diff $$tmp/w1/scale-sda-ls.txt $$tmp/w4/scale-sda-ls.txt || { rm -rf $$tmp; \
		echo "scale-sda-ls tables differ across -workers"; exit 1; }; \
	rm -rf $$tmp; echo "scale-smoke: 1e5-user tables byte-identical at -workers 1 and 4"

# The full million-user design point, with the measured peak RSS printed.
scale:
	$(GO) run ./cmd/linkpadsim -exp scale-disclosure -scale 1 -seed 3 -max-rss-mb 2048
	$(GO) run ./cmd/linkpadsim -exp scale-sda-ls -scale 1 -seed 3 -max-rss-mb 2048

# Everything the CI workflow runs, reproducible locally in one command.
ci: vet build test race staticcheck docs golden-check resume-check scale-smoke

clean:
	rm -f linkpad.test cpu.prof mem.prof

# Race-detector pass over the full test suite; nested parallelism
# (sweep points x sessions x trials) is load-bearing, so run this before
# touching internal/par or the attack pipelines.
race:
	$(GO) test -race ./...
