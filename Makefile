GO ?= go

.PHONY: all build vet test race bench bench-json bench-compare staticcheck clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full figure benchmarks (one iteration each) with allocation metrics.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -v

# Append a timing trajectory record for every experiment to BENCH.json.
bench-json:
	$(GO) run ./cmd/linkpadsim -exp all -scale 0.5 -bench-json BENCH.json

# Per-experiment wall-clock deltas between the last two comparable
# BENCH.json records (same scale/seed/workers).
bench-compare:
	$(GO) run ./cmd/linkpadsim -bench-compare BENCH.json

# Static analysis at the version CI pins (needs network for the first run).
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1 ./...

clean:
	rm -f linkpad.test

# Race-detector pass over the full test suite; nested parallelism
# (sweep points x sessions x trials) is load-bearing, so run this before
# touching internal/par or the attack pipelines.
race:
	$(GO) test -race ./...
