GO ?= go

.PHONY: all build vet test race bench bench-json clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full figure benchmarks (one iteration each) with allocation metrics.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -v

# Append a timing trajectory record for every experiment to BENCH.json.
bench-json:
	$(GO) run ./cmd/linkpadsim -exp all -scale 0.5 -bench-json BENCH.json

clean:
	rm -f linkpad.test

# Race-detector pass over the full test suite; nested parallelism
# (sweep points x sessions x trials) is load-bearing, so run this before
# touching internal/par or the attack pipelines.
race:
	$(GO) test -race ./...
